package livecluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"encoding/gob"

	"rtsads/internal/faultinject"
	"rtsads/internal/obs"
	"rtsads/internal/rng"
	"rtsads/internal/simtime"
	"rtsads/internal/workload"
)

// envelope is the single wire message type exchanged between the host and
// TCP workers, gob-encoded. Exactly one field is set per message.
type envelope struct {
	Hello     *helloMsg
	Deliver   *deliverMsg
	Done      *Done
	Heartbeat bool
	Bye       bool
}

// helloMsg opens a host→worker session. The worker regenerates the
// workload deterministically from the parameters instead of shipping the
// database over the wire — each node loads its own partition, as on a real
// distributed-memory machine.
type helloMsg struct {
	Params        workload.Params
	WorkerID      int
	Scale         float64
	StartUnixNano int64 // the host clock's wall epoch (shared time base)
	// HeartbeatNano and TimeoutNano carry the host's liveness settings so
	// both sides agree: each side sends a heartbeat every HeartbeatNano and
	// treats TimeoutNano of silence as a dead peer. Zero selects defaults.
	HeartbeatNano int64
	TimeoutNano   int64
}

// deliverMsg appends jobs to the worker's ready queue.
type deliverMsg struct {
	Jobs []Job
}

// ServeOptions tunes ServeWorkerContext.
type ServeOptions struct {
	// HelloTimeout bounds how long an accepted connection may take to send
	// its hello before the worker gives up on it (default 30s). It also
	// rejects connections that never identify themselves.
	HelloTimeout time.Duration
}

// ServeWorker handles one host session on the listener: it accepts a
// connection, builds the worker from the hello message, executes delivered
// jobs in order, streams completions back, and returns when the host says
// goodbye. It serves exactly one session; callers wanting a long-lived
// worker loop around it.
func ServeWorker(lis net.Listener) error {
	return ServeWorkerContext(context.Background(), lis, ServeOptions{})
}

// ServeWorkerContext is ServeWorker with bounded waits: cancelling ctx
// closes the listener (and any live session connection) so an orphaned
// worker process exits instead of blocking in Accept or Decode forever, and
// a connection that never sends its hello is dropped after
// opt.HelloTimeout. Silence from the host longer than the session's
// liveness timeout (agreed in the hello) also ends the session.
func ServeWorkerContext(ctx context.Context, lis net.Listener, opt ServeOptions) error {
	helloTimeout := opt.HelloTimeout
	if helloTimeout <= 0 {
		helloTimeout = 30 * time.Second
	}

	// The watcher makes Accept and the session reads interruptible: on ctx
	// cancellation it closes the listener and the session's connection.
	var connMu sync.Mutex
	var liveConn net.Conn
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			lis.Close()
			connMu.Lock()
			if liveConn != nil {
				liveConn.Close()
			}
			connMu.Unlock()
		case <-watchDone:
		}
	}()

	conn, err := lis.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("livecluster: accept: %w", err)
	}
	connMu.Lock()
	liveConn = conn
	connMu.Unlock()
	defer conn.Close()
	if ctx.Err() != nil {
		return ctx.Err()
	}

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex

	// A connection that never says hello (or says it malformed) must not
	// park the worker forever.
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	var hello envelope
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("livecluster: read hello: %w", err)
	}
	if hello.Hello == nil {
		return errors.New("livecluster: first message was not a hello")
	}
	h := hello.Hello
	heartbeat := time.Duration(h.HeartbeatNano)
	if heartbeat <= 0 {
		heartbeat = 100 * time.Millisecond
	}
	idle := time.Duration(h.TimeoutNano)
	if idle <= 0 {
		idle = 5 * heartbeat
	}
	w, err := workload.Generate(h.Params)
	if err != nil {
		return fmt.Errorf("livecluster: regenerate workload: %w", err)
	}
	clock, err := NewClockAt(time.Unix(0, h.StartUnixNano), h.Scale)
	if err != nil {
		return err
	}

	// Every write is bounded so a stalled host cannot park the session.
	send := func(e envelope) error {
		encMu.Lock()
		defer encMu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(idle))
		return enc.Encode(e)
	}

	worker := NewWorker(h.WorkerID, clock, w)
	jobs := make(chan Job, len(w.Tasks))
	done := make(chan Done, 1)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		worker.Run(jobs, done)
		close(done)
	}()
	var writeErr error
	go func() {
		defer wg.Done()
		for d := range done {
			d := d
			if err := send(envelope{Done: &d}); err != nil && writeErr == nil {
				writeErr = err
			}
		}
	}()

	// Heartbeats tell the host this worker is alive even when its queue is
	// busy for a long stretch; they keep flowing through the final drain so
	// the host's read deadline does not fire while we finish up.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		ticker := time.NewTicker(heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ticker.C:
				if err := send(envelope{Heartbeat: true}); err != nil {
					return
				}
			}
		}
	}()

	var readErr error
	for {
		// A host silent for longer than the agreed timeout is presumed
		// dead; the session ends so an orphaned worker does not leak.
		conn.SetReadDeadline(time.Now().Add(idle))
		var msg envelope
		if err := dec.Decode(&msg); err != nil {
			if ctx.Err() != nil {
				readErr = ctx.Err()
			} else {
				readErr = fmt.Errorf("livecluster: read: %w", err)
			}
			break
		}
		switch {
		case msg.Deliver != nil:
			for _, j := range msg.Deliver.Jobs {
				jobs <- j
			}
		case msg.Heartbeat:
			// Liveness only; the deadline reset above is the point.
		case msg.Bye:
			readErr = nil
			goto drain
		default:
			readErr = errors.New("livecluster: unexpected message")
			goto drain
		}
	}
drain:
	close(jobs)
	wg.Wait()
	// Acknowledge completion so the host can close cleanly.
	ackErr := send(envelope{Bye: true})
	close(hbStop)
	hbWG.Wait()
	switch {
	case readErr != nil:
		return readErr
	case writeErr != nil:
		return fmt.Errorf("livecluster: write completion: %w", writeErr)
	case ackErr != nil:
		return fmt.Errorf("livecluster: write bye: %w", ackErr)
	}
	return nil
}

// errConnDown marks sends attempted while a worker's connection is being
// re-established or is gone for good.
var errConnDown = errors.New("livecluster: connection down")

// workerConn is the host's handle on one remote worker. The connection
// behind it can be swapped by a successful redial.
type workerConn struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dead bool // set when the worker is given up on for good
}

// send encodes one envelope with a bounded write. On error the connection
// is closed so the reader notices and the supervisor takes over.
func (wc *workerConn) send(e envelope, timeout time.Duration) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.conn == nil {
		return errConnDown
	}
	wc.conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := wc.enc.Encode(e); err != nil {
		wc.conn.Close()
		return err
	}
	return nil
}

// session snapshots the current connection and starts a fresh gob stream
// reader for it.
func (wc *workerConn) session() (net.Conn, *gob.Decoder) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.conn == nil {
		return nil, nil
	}
	return wc.conn, gob.NewDecoder(wc.conn)
}

// swap installs a freshly-dialled connection (with its encoder) in place of
// the old one.
func (wc *workerConn) swap(conn net.Conn, enc *gob.Encoder) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.conn != nil {
		wc.conn.Close()
	}
	wc.conn = conn
	wc.enc = enc
}

// closeConn tears the current connection down (the reader notices).
func (wc *workerConn) closeConn() {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.conn != nil {
		wc.conn.Close()
	}
}

// markDead closes the connection and refuses future sends.
func (wc *workerConn) markDead() {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.conn != nil {
		wc.conn.Close()
		wc.conn = nil
	}
	wc.dead = true
}

func (wc *workerConn) isDead() bool {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.dead
}

// TCPOptions configures the TCP backend beyond its worker addresses.
type TCPOptions struct {
	// Liveness tunes heartbeats, timeouts and reconnection; zero values
	// select the defaults.
	Liveness Liveness
	// Inject applies a fault plan to the transport. Optional.
	Inject *faultinject.Injector
	// Obs records transport-level liveness events: heartbeats in both
	// directions and redial outcomes. Optional.
	Obs *obs.Observer
	// QueueCap bounds each worker's outstanding (delivered-but-unfinished)
	// jobs; beyond it Deliver returns *Overloaded so the host backs off
	// instead of buffering unboundedly. Zero disables backpressure.
	QueueCap int
}

// TCPBackend connects the host to one remote worker process per working
// processor. Each connection carries heartbeats in both directions and
// enforces read/write deadlines, so a dead worker is detected within the
// liveness timeout instead of blocking the run forever; broken connections
// are redialled with bounded backoff, and workers that cannot be reached
// again are reported as fatally failed so the cluster re-routes their work.
type TCPBackend struct {
	clock    *Clock
	live     Liveness
	inj      *faultinject.Injector
	o        *obs.Observer
	hello    helloMsg
	conns    []*workerConn
	done     chan Done
	failures chan Failure
	stop     chan struct{}
	closing  atomic.Bool
	wg       sync.WaitGroup
	tracker  *loadTracker

	// sleep pauses for the given duration or until the backend stops,
	// reporting whether it completed. Tests override it with a fake clock
	// to observe redial backoff without real waiting.
	sleep func(d time.Duration) bool
}

// NewTCPBackend dials one address per worker and performs the hello
// handshake. The worker at addrs[i] becomes working processor i.
func NewTCPBackend(clock *Clock, w *workload.Workload, addrs []string, opts TCPOptions) (*TCPBackend, error) {
	if len(addrs) != w.Params.Workers {
		return nil, fmt.Errorf("livecluster: %d worker addresses for %d workers", len(addrs), w.Params.Workers)
	}
	live := opts.Liveness.withDefaults()
	b := &TCPBackend{
		clock: clock,
		live:  live,
		inj:   opts.Inject,
		o:     opts.Obs,
		hello: helloMsg{
			Params:        w.Params,
			Scale:         clock.Scale(),
			StartUnixNano: clock.Start().UnixNano(),
			HeartbeatNano: live.HeartbeatEvery.Nanoseconds(),
			TimeoutNano:   live.Timeout.Nanoseconds(),
		},
		done:     make(chan Done, len(addrs)),
		failures: make(chan Failure, 4*len(addrs)+4),
		stop:     make(chan struct{}),
		tracker:  newLoadTracker(len(addrs), opts.QueueCap, live.StragglerGrace),
	}
	b.sleep = func(d time.Duration) bool {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
			return true
		case <-b.stop:
			return false
		}
	}
	for i, addr := range addrs {
		wc := &workerConn{addr: addr}
		if err := b.dial(i, wc); err != nil {
			b.abort()
			return nil, err
		}
		b.conns = append(b.conns, wc)
	}
	for i := range b.conns {
		b.wg.Add(1)
		go b.supervise(i)
		go b.heartbeats(i)
		if killAt, ok := b.inj.KillAt(i); ok {
			go b.killer(i, killAt)
		}
	}
	return b, nil
}

// dial establishes (or re-establishes) worker i's connection and performs
// the hello handshake.
func (b *TCPBackend) dial(i int, wc *workerConn) error {
	conn, err := net.DialTimeout("tcp", wc.addr, b.live.Timeout)
	if err != nil {
		return fmt.Errorf("livecluster: dial worker %d at %s: %w", i, wc.addr, err)
	}
	enc := gob.NewEncoder(conn)
	hello := b.hello
	hello.WorkerID = i
	conn.SetWriteDeadline(time.Now().Add(b.live.Timeout))
	if err := enc.Encode(envelope{Hello: &hello}); err != nil {
		conn.Close()
		return fmt.Errorf("livecluster: hello to worker %d: %w", i, err)
	}
	wc.swap(conn, enc)
	return nil
}

// supervise owns worker i's read side: it forwards completions until the
// session ends, and on a broken session redials with backoff. Every broken
// session is reported as a Failure — non-fatal when a fresh session was
// established (the cluster reclaims and re-delivers the worker's jobs),
// fatal when the worker is gone for good.
func (b *TCPBackend) supervise(i int) {
	defer b.wg.Done()
	wc := b.conns[i]
	for {
		err := b.readSession(i)
		if err == nil || b.closing.Load() {
			return // clean bye, or shutdown in progress
		}
		if b.redial(i) {
			// The fresh session starts with an empty worker queue.
			b.tracker.reset(i)
			b.o.Redial(i, true, b.clock.Now())
			b.failures <- Failure{Worker: i, At: b.clock.Now(), Fatal: false,
				Err: fmt.Sprintf("livecluster: worker %d reconnected after: %v", i, err)}
			continue
		}
		if b.closing.Load() {
			return // shutdown raced the redial; not a worker failure
		}
		b.o.Redial(i, false, b.clock.Now())
		wc.markDead()
		b.tracker.reset(i)
		b.failures <- Failure{Worker: i, At: b.clock.Now(), Fatal: true,
			Err: fmt.Sprintf("livecluster: worker %d lost: %v", i, err)}
		return
	}
}

// readSession forwards one session's completions. It returns nil on a clean
// bye and the transport error otherwise. Reads are bounded: a worker silent
// for longer than the liveness timeout (it should heartbeat far more often)
// is treated as dead.
func (b *TCPBackend) readSession(i int) error {
	conn, dec := b.conns[i].session()
	if conn == nil {
		return errConnDown
	}
	for {
		conn.SetReadDeadline(time.Now().Add(b.live.Timeout))
		var msg envelope
		if err := dec.Decode(&msg); err != nil {
			return fmt.Errorf("livecluster: read from worker %d: %w", i, err)
		}
		switch {
		case msg.Done != nil:
			b.tracker.complete(msg.Done.Task)
			b.done <- *msg.Done
		case msg.Heartbeat:
			b.o.HeartbeatRecv(i, b.clock.Now())
		case msg.Bye:
			return nil
		}
	}
}

// redial tries to re-establish worker i's session, with jittered
// exponential backoff, up to the configured attempt budget. Workers under
// an injected kill are never redialled — the fault plan wants them dead.
func (b *TCPBackend) redial(i int) bool {
	if b.live.Redials < 0 || b.inj.Killed(i) {
		return false
	}
	// Per-worker deterministic jitter: when one network event severs many
	// connections at once, the workers must not all redial on the same
	// doubling schedule and hammer the fabric in lockstep.
	bo := NewBackoff(RedialJitterSeed+uint64(i), b.live.RedialBackoff, 0)
	for attempt := 0; attempt < b.live.Redials; attempt++ {
		if !b.sleep(bo.Next()) {
			return false
		}
		if b.closing.Load() || b.inj.Killed(i) {
			return false
		}
		if err := b.dial(i, b.conns[i]); err == nil {
			return true
		}
	}
	return false
}

// RedialJitterSeed decorrelates redial jitter streams from the workload's
// seed space (an arbitrary odd 64-bit constant). Callers offset it with a
// per-peer index so concurrent redialers draw distinct jitter sequences.
const RedialJitterSeed uint64 = 0x9e3779b97f4a7c15

// Backoff yields capped, jittered exponential redial delays: each Next
// draws from [d/2, d) and doubles d, up to cap (0 = uncapped). The jitter
// stream is deterministic per seed, so when one network event severs many
// connections at once the peers spread over the window instead of
// hammering the fabric in lockstep — and tests can pin the exact delays.
// Both the worker redial path and the federation's shard dial/rejoin
// loops share this schedule.
type Backoff struct {
	src  *rng.Source
	next time.Duration
	cap  time.Duration
}

// NewBackoff builds a backoff schedule starting at base (default 50ms)
// and doubling up to cap per attempt (0 = uncapped).
func NewBackoff(seed uint64, base, cap time.Duration) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap > 0 && base > cap {
		base = cap
	}
	return &Backoff{src: rng.New(seed), next: base, cap: cap}
}

// Next returns the delay to sleep before the coming attempt.
func (b *Backoff) Next() time.Duration {
	d := jitterBackoff(b.src, b.next)
	b.next *= 2
	if b.cap > 0 && b.next > b.cap {
		b.next = b.cap
	}
	return d
}

// jitterBackoff draws a delay from [d/2, d): the exponential doubling still
// bounds the total wait, but concurrent redialers spread over the window
// instead of colliding at exactly d.
func jitterBackoff(src *rng.Source, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(src.Float64()*float64(half))
}

// heartbeats keeps worker i's connection warm so its idle-timeout detector
// only fires when the host is really gone. Suppressed while the link is
// stalled by fault injection (that is the point of a stall).
func (b *TCPBackend) heartbeats(i int) {
	ticker := time.NewTicker(b.live.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			if _, stalled := b.inj.StallUntil(i); stalled {
				continue
			}
			// Send errors close the conn; the supervisor handles recovery.
			if b.conns[i].send(envelope{Heartbeat: true}, b.live.Timeout) == nil {
				b.o.HeartbeatSent(i)
			}
		}
	}
}

// killer enforces an injected worker crash: at the kill time the connection
// is severed, and redial (checked against the injector) is refused, so the
// failure propagates through the same detection path a real crash would.
func (b *TCPBackend) killer(i int, at simtime.Instant) {
	timer := time.NewTimer(b.clock.WallUntil(at))
	defer timer.Stop()
	select {
	case <-timer.C:
		b.conns[i].closeConn()
	case <-b.stop:
	}
}

// Deliver implements Backend. Transport errors are not returned: they sever
// the connection, and the supervisor reports the failure so the cluster
// reclaims the worker's jobs. With backpressure enabled, jobs beyond the
// worker's queue cap are refused with *Overloaded (the accepted prefix was
// sent).
func (b *TCPBackend) Deliver(proc int, jobs []Job) error {
	if proc < 0 || proc >= len(b.conns) {
		return fmt.Errorf("livecluster: worker %d out of range", proc)
	}
	if until, ok := b.inj.StallUntil(proc); ok {
		b.clock.SleepUntil(until)
	}
	f := b.inj.OnSend(proc)
	if f.Drop {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	var over *Overloaded
	if b.tracker != nil {
		room := b.tracker.room(proc, b.clock.Now())
		if room < 0 {
			room = 0
		}
		overflowed := room < len(jobs)
		if overflowed {
			jobs = jobs[:room]
		}
		for _, j := range jobs {
			b.tracker.add(proc, j)
		}
		if overflowed {
			// The retry hint is computed after registering the accepted
			// prefix so it reflects the queue the host would actually retry
			// against.
			over = &Overloaded{Worker: proc, Accepted: room, RetryAfter: b.tracker.retryAfter(proc)}
		}
	}
	if len(jobs) > 0 {
		b.conns[proc].send(envelope{Deliver: &deliverMsg{Jobs: jobs}}, b.live.Timeout)
	}
	if over != nil {
		return over
	}
	return nil
}

// Done implements Backend.
func (b *TCPBackend) Done() <-chan Done { return b.done }

// Failures implements Backend.
func (b *TCPBackend) Failures() <-chan Failure { return b.failures }

// Close implements Backend: say goodbye, wait for the live workers to drain
// and acknowledge, then close the completion stream. Workers already given
// up on are skipped.
func (b *TCPBackend) Close() error {
	b.closing.Store(true)
	close(b.stop)
	var firstErr error
	for i, wc := range b.conns {
		if wc.isDead() {
			continue
		}
		if err := wc.send(envelope{Bye: true}, b.live.Timeout); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("livecluster: bye to worker %d: %w", i, err)
		}
	}
	b.wg.Wait()
	for _, wc := range b.conns {
		wc.closeConn()
	}
	close(b.done)
	return firstErr
}

// abort tears down partially-dialled connections during construction.
func (b *TCPBackend) abort() {
	for _, wc := range b.conns {
		wc.closeConn()
	}
}
