// Package federation shards a single RT-SADS cluster into N self-contained
// scheduler domains behind one front-end router — the route past the
// paper's own scalability ceiling, where per-phase search cost grows with
// batch size × processor count (§5). Each shard runs its own planner,
// worker set, admission gate and metrics namespace over a fixed slice of
// the worker pool; the router owns global task admission and places every
// arriving task on one shard by a pluggable policy:
//
//   - affinity-first: the shard holding the most replicas of the task's
//     sub-database (everything else pays the paper's constant remote cost C)
//   - least-ce: the shard with the smallest cost estimate — its reported
//     Min_Load/queued-work summary, the router-level analogue of §4.2's
//     Min_Load term
//   - hashed: task ID modulo shard count, the affinity-blind baseline
//
// Migration keeps the end-to-end guarantee deadline-safe: when a shard's
// admission gate rejects a task (locally hopeless, queue full, or the
// shard has lost every worker), the shard hands the task back to the
// router instead of shedding it, and the router re-offers it to sibling
// shards after re-running the §4.3 feasibility test — t_c + RQs + se_lk ≤
// d_l — against the target shard's reported state. The test here is
// advisory (a summary can be one phase stale); the target shard's own
// admission gate and planner re-prove feasibility before anything
// executes, so a migrated task either provably meets its deadline on the
// new shard or is counted honestly.
//
// Two drivers share this routing core: Federation (router.go) runs live
// shards — real livecluster instances on one shared virtual clock — and
// Simulate (sim.go) runs the bit-for-bit reproducible analytic model the
// acceptance tests and benchmarks use.
package federation

import (
	"fmt"
	"time"

	"rtsads/internal/affinity"
	"rtsads/internal/faultinject"
	"rtsads/internal/metrics"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
	"rtsads/internal/workload"
)

// Federation-level metric names: the router's own counters, alongside the
// per-shard rtsads_* families that gain a shard label in the merged
// exposition.
const (
	// MetricRouted counts tasks the router placed on first arrival — one
	// per distinct task.
	MetricRouted = "rtsads_fed_routed_total"
	// MetricMigrated counts cross-shard migrations: rejected tasks the
	// router successfully re-offered to a sibling shard.
	MetricMigrated = "rtsads_fed_migrated_total"
	// MetricBounced counts reject callbacks received from shards (each
	// bounce is either migrated or rejected).
	MetricBounced = "rtsads_fed_bounced_total"
	// MetricRejected counts bounces with no feasible sibling; the
	// rejecting shard sheds (or loses) those locally.
	MetricRejected = "rtsads_fed_rejected_total"
	// MetricSalvaged counts tasks rescued off a dead shard: outstanding
	// (or mid-submit) work the router re-placed on a feasible sibling.
	// Every salvage is also a migration, so the bounce identities hold.
	MetricSalvaged = "rtsads_fed_salvaged_total"
	// MetricSalvageLost counts salvage attempts no sibling could serve by
	// the deadline; those tasks are charged lost to the dead shard.
	MetricSalvageLost = "rtsads_fed_salvage_lost_total"
	// MetricRejoins counts completed rejoin handshakes — a restarted shard
	// process re-admitted to placement.
	MetricRejoins = "rtsads_fed_rejoins_total"
	// MetricQuarantines counts placeable→quarantined edges: a shard pulled
	// from placement because its frames went stale (suspect) or it rejoined
	// on flap probation.
	MetricQuarantines = "rtsads_fed_quarantines_total"
	// MetricShards is the configured shard count.
	MetricShards = "rtsads_fed_shards"
	// MetricRoutedShardPattern is the per-shard first-route counter.
	MetricRoutedShardPattern = `rtsads_fed_routed_total{shard="%d"}`
)

// Placement selects how the router picks a shard for each task.
type Placement int

const (
	// AffinityFirst routes to the shard holding the most replicas of the
	// task's sub-database; ties break on the smaller cost estimate.
	AffinityFirst Placement = iota
	// LeastCE routes to the shard with the smallest cost estimate
	// regardless of affinity.
	LeastCE
	// Hashed routes by task ID modulo shard count, walking forward past
	// dead shards.
	Hashed
)

// String returns the policy's flag-friendly name.
func (p Placement) String() string {
	switch p {
	case AffinityFirst:
		return "affinity"
	case LeastCE:
		return "least-ce"
	case Hashed:
		return "hashed"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// ParsePlacement maps a flag value back to a policy.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "affinity":
		return AffinityFirst, nil
	case "least-ce":
		return LeastCE, nil
	case "hashed":
		return Hashed, nil
	default:
		return 0, fmt.Errorf("federation: unknown placement %q (want affinity, least-ce or hashed)", s)
	}
}

// Topology partitions a worker pool into equal shards. Global worker k
// belongs to shard k/WorkersPerShard and is that shard's local worker
// k%WorkersPerShard.
type Topology struct {
	Shards          int
	WorkersPerShard int
}

// SplitWorkers builds the topology dividing total workers across shards,
// rejecting totals that do not divide evenly — a lopsided cluster would
// silently skew every per-shard comparison.
func SplitWorkers(total, shards int) (Topology, error) {
	if shards <= 0 {
		return Topology{}, fmt.Errorf("federation: shard count %d must be positive", shards)
	}
	if total <= 0 {
		return Topology{}, fmt.Errorf("federation: worker count %d must be positive", total)
	}
	if total%shards != 0 {
		return Topology{}, fmt.Errorf("federation: %d workers do not divide evenly into %d shards (use a worker count that is a multiple of the shard count)", total, shards)
	}
	return Topology{Shards: shards, WorkersPerShard: total / shards}, nil
}

// Validate reports whether the topology is usable.
func (tp Topology) Validate() error {
	if tp.Shards <= 0 {
		return fmt.Errorf("federation: Shards %d must be positive", tp.Shards)
	}
	if tp.WorkersPerShard <= 0 {
		return fmt.Errorf("federation: WorkersPerShard %d must be positive", tp.WorkersPerShard)
	}
	if tp.TotalWorkers() > affinity.MaxProcs {
		return fmt.Errorf("federation: %d total workers exceed the limit of %d", tp.TotalWorkers(), affinity.MaxProcs)
	}
	return nil
}

// TotalWorkers returns the pool size across all shards.
func (tp Topology) TotalWorkers() int { return tp.Shards * tp.WorkersPerShard }

// ShardOf returns the shard owning global worker k.
func (tp Topology) ShardOf(k int) int { return k / tp.WorkersPerShard }

// String renders the topology for startup banners.
func (tp Topology) String() string {
	return fmt.Sprintf("%d shard(s) × %d worker(s) (%d total)", tp.Shards, tp.WorkersPerShard, tp.TotalWorkers())
}

// Overlap counts the workers of the given shard that hold a replica the
// task has affinity to — the placement signal behind AffinityFirst, and
// the reason a shard's communication cost is zero rather than the remote
// constant C.
func (tp Topology) Overlap(t *task.Task, shard int) int {
	return t.Affinity.CountRange(shard*tp.WorkersPerShard, tp.WorkersPerShard)
}

// ShardView is one shard's state as the router sees it at a routing
// decision: the load summary projected onto one candidate task.
type ShardView struct {
	// Alive is the shard's surviving worker count; zero makes the shard
	// ineligible.
	Alive int
	// Sealed shards accept no further submissions.
	Sealed bool
	// Quarantined shards are alive but pulled from placement — frames gone
	// stale (suspect) or rejoined on flap probation. They keep settling the
	// work they hold; they just take no new work until the router clears
	// them, so a flapping shard cannot thrash migrations.
	Quarantined bool
	// RQs is the delay until the shard's earliest worker frees up —
	// max(0, MinFree − now), the §4.3 RQs term for the best-placed local
	// queue.
	RQs time.Duration
	// QueuedWork is the planned work queued across the shard's alive
	// workers.
	QueuedWork time.Duration
	// Overlap and Comm are task-specific: the replica overlap with this
	// shard and the communication cost the task pays there (zero when
	// Overlap > 0, the remote constant C otherwise).
	Overlap int
	Comm    time.Duration
	// Submitted counts tasks the router has already placed on this shard;
	// the final tie-break, so bursty arrivals spread instead of piling on
	// one shard.
	Submitted int
}

// Eligible reports whether the shard can accept a submission at all.
func (v ShardView) Eligible() bool { return v.Alive > 0 && !v.Sealed && !v.Quarantined }

// CE is the router-level cost estimate: the earliest-free delay plus the
// queued work amortised over the surviving workers — a per-shard Min_Load
// summary in the spirit of §4.2, cheap enough to evaluate per arrival.
func (v ShardView) CE() time.Duration {
	alive := v.Alive
	if alive < 1 {
		alive = 1
	}
	return v.RQs + v.QueuedWork/time.Duration(alive)
}

// Feasible re-runs the §4.3 test against this shard: t_c + RQs + se_lk ≤
// d_l, with se_lk = p_l + comm on the shard's earliest-free worker. It is
// deliberately the optimistic bound (the planner may place the task on a
// busier worker) so it never vetoes a migration the target could serve;
// the target's own gate and planner remain the hard guarantee.
func (v ShardView) Feasible(t *task.Task, now simtime.Instant) bool {
	if !v.Eligible() {
		return false
	}
	return !now.Add(v.RQs + t.Proc + v.Comm).After(t.Deadline)
}

// Pick returns the best shard for t under the policy, or -1 when no shard
// passes. ok, when non-nil, further restricts the candidates (migration
// excludes already-tried shards and requires feasibility); ineligible
// shards are always skipped. Deterministic: ties always break the same
// way, ending on the lowest index.
func (p Placement) Pick(t *task.Task, views []ShardView, ok func(int) bool) int {
	use := func(i int) bool {
		return views[i].Eligible() && (ok == nil || ok(i))
	}
	if p == Hashed {
		n := len(views)
		start := int(t.ID) % n
		if start < 0 {
			start += n
		}
		for j := 0; j < n; j++ {
			if i := (start + j) % n; use(i) {
				return i
			}
		}
		return -1
	}
	best := -1
	for i := range views {
		if !use(i) {
			continue
		}
		if best < 0 || p.prefers(views[i], views[best]) {
			best = i
		}
	}
	return best
}

// prefers reports whether view a strictly beats view b under the policy.
// Equal views do not prefer, so Pick keeps the earlier (lower) index.
func (p Placement) prefers(a, b ShardView) bool {
	if p == AffinityFirst && a.Overlap != b.Overlap {
		return a.Overlap > b.Overlap
	}
	if a.CE() != b.CE() {
		return a.CE() < b.CE()
	}
	return a.Submitted < b.Submitted
}

// Localize copies a task into a shard's local frame: the affinity set is
// remapped from global worker IDs to the shard's local worker IDs (empty
// when the shard holds no replica, so every local placement pays the
// remote cost C). ID, deadline and costs are untouched, so accounting and
// migration still speak about the same task.
func Localize(t *task.Task, tp Topology, shard int) *task.Task {
	lt := new(task.Task)
	LocalizeInto(lt, t, tp, shard)
	return lt
}

// LocalizeInto is Localize writing into caller-provided storage — the
// allocation-free form the batched submit path uses with arena-backed task
// slots.
func LocalizeInto(dst *task.Task, t *task.Task, tp Topology, shard int) {
	*dst = *t
	dst.Affinity = t.Affinity.Rebase(shard*tp.WorkersPerShard, tp.WorkersPerShard)
}

// ShardWorkload projects the global workload onto one shard: the worker
// count shrinks to the shard's slice and the replica placement is remapped
// to local worker IDs. The database, transactions, cost model and the
// global task list are shared — the tasks are not replayed by an external
// shard, but they size the in-process backend's ready queues, which must
// hold whatever the router submits.
func ShardWorkload(w *workload.Workload, tp Topology, shard int) *workload.Workload {
	p := w.Params
	p.Workers = tp.WorkersPerShard
	placement := make([]affinity.Set, len(w.Placement))
	base := shard * tp.WorkersPerShard
	for sub, set := range w.Placement {
		placement[sub] = set.Rebase(base, tp.WorkersPerShard)
	}
	return &workload.Workload{
		Params:    p,
		DB:        w.DB,
		Placement: placement,
		Cost:      w.Cost,
		Txns:      w.Txns,
		Tasks:     w.Tasks,
	}
}

// SplitFaults partitions a global fault plan by shard, remapping each
// event's worker to the owning shard's local ID. Random-victim events
// (faultinject.RandWorker) are rejected for multi-shard topologies: the
// split must be deterministic, and "a random worker somewhere" has no
// well-defined shard. A nil or empty plan yields all-nil shard plans.
func SplitFaults(p *faultinject.Plan, tp Topology) ([]*faultinject.Plan, error) {
	out := make([]*faultinject.Plan, tp.Shards)
	if p.Empty() {
		return out, nil
	}
	get := func(worker int) (*faultinject.Plan, int, error) {
		if worker < 0 {
			if tp.Shards > 1 {
				return nil, 0, fmt.Errorf("federation: random-victim faults are ambiguous across %d shards; name an explicit worker", tp.Shards)
			}
			if out[0] == nil {
				out[0] = &faultinject.Plan{Seed: p.Seed}
			}
			return out[0], worker, nil
		}
		if worker >= tp.TotalWorkers() {
			return nil, 0, fmt.Errorf("federation: fault victim %d out of range (%d workers)", worker, tp.TotalWorkers())
		}
		s := tp.ShardOf(worker)
		if out[s] == nil {
			out[s] = &faultinject.Plan{Seed: p.Seed}
		}
		return out[s], worker % tp.WorkersPerShard, nil
	}
	for _, k := range p.Kills {
		sp, local, err := get(k.Worker)
		if err != nil {
			return nil, err
		}
		k.Worker = local
		sp.Kills = append(sp.Kills, k)
	}
	for _, d := range p.Drops {
		sp, local, err := get(d.Worker)
		if err != nil {
			return nil, err
		}
		d.Worker = local
		sp.Drops = append(sp.Drops, d)
	}
	for _, d := range p.Delays {
		sp, local, err := get(d.Worker)
		if err != nil {
			return nil, err
		}
		d.Worker = local
		sp.Delays = append(sp.Delays, d)
	}
	for _, s := range p.Stalls {
		sp, local, err := get(s.Worker)
		if err != nil {
			return nil, err
		}
		s.Worker = local
		sp.Stalls = append(sp.Stalls, s)
	}
	return out, nil
}

// Result is the outcome of one federated run: every shard's own
// RunResult plus the router's counters.
type Result struct {
	Topology  Topology
	Placement Placement

	// Shards holds each shard's run result, indexed by shard.
	Shards []*metrics.RunResult

	// Routed counts first-arrival placements — exactly one per distinct
	// task, so it equals the workload size.
	Routed int
	// Bounced counts reject callbacks the router received; every bounce is
	// either Migrated (re-placed on a feasible sibling) or Rejected (no
	// feasible sibling — the rejecting shard shed it locally).
	Bounced  int
	Migrated int
	Rejected int
	// Salvaged counts tasks rescued off dead shards (a subset of
	// Migrated); SalvageLost counts salvage attempts no sibling could
	// serve by the deadline (a subset of Rejected). Rejoins counts
	// completed rejoin handshakes.
	Salvaged    int
	SalvageLost int
	Rejoins     int
	// PerShardRouted breaks Routed down by first-placement shard.
	PerShardRouted []int
}

// Combined folds the per-shard results into one federation-wide RunResult.
// Total is the number of distinct tasks (migrated tasks appear in two
// shards' Totals but in exactly one shard's non-bounce terminal bucket).
func (r *Result) Combined() *metrics.RunResult {
	out := &metrics.RunResult{
		Workers: r.Topology.TotalWorkers(),
		Total:   r.Routed,
	}
	algo := "federated"
	for _, s := range r.Shards {
		if s == nil {
			continue
		}
		if algo == "federated" && s.Algorithm != "" {
			algo = s.Algorithm
		}
		out.Hits += s.Hits
		out.Purged += s.Purged
		out.ScheduledMissed += s.ScheduledMissed
		out.LostToFailure += s.LostToFailure
		out.WorkerFailures += s.WorkerFailures
		out.Rerouted += s.Rerouted
		out.Admitted += s.Admitted
		out.Shed += s.Shed
		out.ShedHopeless += s.ShedHopeless
		out.ShedQueueFull += s.ShedQueueFull
		out.ShedShutdown += s.ShedShutdown
		out.ShedInfeasible += s.ShedInfeasible
		out.Bounced += s.Bounced
		out.Overloads += s.Overloads
		out.Degradations += s.Degradations
		out.Recoveries += s.Recoveries
		out.DegradedPhases += s.DegradedPhases
		out.Phases += s.Phases
		out.SchedulingTime += s.SchedulingTime
		out.VerticesGenerated += s.VerticesGenerated
		out.Backtracks += s.Backtracks
		out.DeadEnds += s.DeadEnds
		out.QuantaExpired += s.QuantaExpired
		if s.Makespan.After(out.Makespan) {
			out.Makespan = s.Makespan
		}
		out.WorkerBusy = append(out.WorkerBusy, s.WorkerBusy...)
		out.Response.Merge(&s.Response)
	}
	out.Algorithm = fmt.Sprintf("%s/fed×%d", algo, r.Topology.Shards)
	return out
}

// Reconcile checks the federation-wide accounting identities and returns
// the first violation:
//
//	Σ shard.Total                    == Routed + Migrated
//	Σ shard.Bounced                  == Migrated   (a shard counts a bounce
//	                                    only when the router re-placed it;
//	                                    failed bounces are shed locally)
//	Bounced                          == Migrated + Rejected
//	Σ shard non-bounce terminals     == Routed   (each task settles once)
//	per shard: terminals + Bounced   == Total
func (r *Result) Reconcile() error {
	sumTotal, sumBounced, sumSettled := 0, 0, 0
	for i, s := range r.Shards {
		if s == nil {
			return fmt.Errorf("federation: shard %d has no result", i)
		}
		settled := s.Hits + s.Purged + s.ScheduledMissed + s.LostToFailure + s.Shed
		if settled+s.Bounced != s.Total {
			return fmt.Errorf("federation: shard %d books do not balance: hits=%d purged=%d schedMissed=%d lost=%d shed=%d bounced=%d != total=%d",
				i, s.Hits, s.Purged, s.ScheduledMissed, s.LostToFailure, s.Shed, s.Bounced, s.Total)
		}
		sumTotal += s.Total
		sumBounced += s.Bounced
		sumSettled += settled
	}
	if sumTotal != r.Routed+r.Migrated {
		return fmt.Errorf("federation: Σ shard totals %d != routed %d + migrated %d", sumTotal, r.Routed, r.Migrated)
	}
	if sumBounced != r.Migrated {
		return fmt.Errorf("federation: Σ shard bounced %d != federation migrated %d", sumBounced, r.Migrated)
	}
	if r.Bounced != r.Migrated+r.Rejected {
		return fmt.Errorf("federation: bounced %d != migrated %d + rejected %d", r.Bounced, r.Migrated, r.Rejected)
	}
	if sumSettled != r.Routed {
		return fmt.Errorf("federation: %d tasks settled != %d routed", sumSettled, r.Routed)
	}
	routed := 0
	for _, n := range r.PerShardRouted {
		routed += n
	}
	if routed != r.Routed {
		return fmt.Errorf("federation: Σ per-shard routed %d != routed %d", routed, r.Routed)
	}
	if r.Salvaged > r.Migrated {
		return fmt.Errorf("federation: salvaged %d exceeds migrated %d", r.Salvaged, r.Migrated)
	}
	if r.SalvageLost > r.Rejected {
		return fmt.Errorf("federation: salvage-lost %d exceeds rejected %d", r.SalvageLost, r.Rejected)
	}
	return nil
}
