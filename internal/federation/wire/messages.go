package wire

import (
	"rtsads/internal/admission"
	"rtsads/internal/livecluster"
	"rtsads/internal/obs"
	"rtsads/internal/workload"
)

// Hello configures a remote shard session. The shard regenerates the
// workload deterministically from Params and projects its own slice with
// the topology fields — the database never crosses the wire, exactly like
// the worker-level protocol's hello. Topology is carried as plain ints so
// the wire package stays independent of the federation package.
type Hello struct {
	Params workload.Params `json:"params"`

	Shards          int `json:"shards"`
	WorkersPerShard int `json:"workers_per_shard"`
	Shard           int `json:"shard"` // this session's shard index

	Algorithm     string  `json:"algorithm"`
	Scale         float64 `json:"scale"`
	StartUnixNano int64   `json:"start_unix_nano"` // shared clock epoch

	// HeartbeatNano and TimeoutNano carry the router's liveness settings
	// so both sides agree; zero selects defaults.
	HeartbeatNano int64 `json:"heartbeat_nano,omitempty"`
	TimeoutNano   int64 `json:"timeout_nano,omitempty"`

	Admission      admission.Config `json:"admission,omitempty"`
	Backpressure   int              `json:"backpressure,omitempty"`
	SlackGuardNano int64            `json:"slack_guard_nano,omitempty"`
	DegradeAfter   int              `json:"degrade_after,omitempty"`
	Parallel       int              `json:"parallel,omitempty"`
	StealDepth     int              `json:"steal_depth,omitempty"`
	FrontierCap    int              `json:"frontier_cap,omitempty"`
	DupCap         int              `json:"dup_cap,omitempty"`
	JournalCap     int              `json:"journal_cap,omitempty"`

	// Rejoin marks this hello as a re-handshake after a session loss: the
	// router has already salvaged the dead session's outstanding tasks and
	// folded its books, and the shard should serve a fresh session under
	// the same shard index. Epoch counts sessions (0 = first); ResumeSeq is
	// the last checkpoint sequence the router applied from the previous
	// session, carried as the rejoin watermark so both sides agree on what
	// state was already replayed into the router's ledger.
	Rejoin    bool   `json:"rejoin,omitempty"`
	Epoch     int    `json:"epoch,omitempty"`
	ResumeSeq uint64 `json:"resume_seq,omitempty"`
}

// Summary is the shard's periodic state report: the load snapshot the
// router's placement reads, plus the registry counters the router's
// settle loop and a mid-run reconciliation read. It doubles as the
// shard→router heartbeat.
type Summary struct {
	Load livecluster.Summary `json:"load"`
	// Counters is the shard registry snapshot (the rtsads_* families).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Checkpoint is the shard's periodic durable-progress snapshot: the task
// IDs that reached a terminal verdict since the previous checkpoint, plus
// the cumulative settle-derived verdict counts consistent with them. The
// shard records each settled ID and its bucket count in one critical
// section (see obs.OnSettle), so Counters charges exactly the union of
// Settled lists shipped through Seq — the invariant the router's salvage
// accounting leans on: at any death it can partition the shard's
// submissions into settled (per Counters), outstanding (salvageable) and
// migrated-away, with no task double-counted or dropped.
type Checkpoint struct {
	// Seq increases by one per checkpoint within a session; the router
	// ignores stale or duplicate sequences.
	Seq uint64 `json:"seq"`
	// Settled lists task IDs newly verdicted since checkpoint Seq-1.
	Settled []int32 `json:"settled,omitempty"`
	// Counters carries the cumulative per-verdict counts (the hits,
	// missed, purged, lost and shed rtsads_* keys) covering exactly the
	// IDs shipped through Seq.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Sealed reports whether the shard's feed has been closed.
	Sealed bool `json:"sealed,omitempty"`
}

// JournalExport ships the shard's lifecycle journal at seal time.
type JournalExport struct {
	Entries []obs.Entry `json:"entries"`
	Evicted int64       `json:"evicted"`
}
