package federation

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"rtsads/internal/admission"
	"rtsads/internal/faultinject"
	"rtsads/internal/obs"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
	"rtsads/internal/workload"
)

// sectionWorkload generates the paper's §5.1 configuration over the given
// worker count.
func sectionWorkload(t *testing.T, workers int) *workload.Workload {
	t.Helper()
	w, err := workload.Generate(workload.DefaultParams(workers))
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return w
}

// checkRegistryMirror asserts that a shard's registry counters equal the
// corresponding RunResult fields — the reconciliation the federation-wide
// invariants rest on.
func checkRegistryMirror(t *testing.T, shard int, o *obs.Observer, res mirrorable) {
	t.Helper()
	snap := o.Registry().Snapshot()
	for name, want := range res.mirror() {
		if got := snap[name]; got != int64(want) {
			t.Errorf("shard %d: registry %s = %d, result says %d", shard, name, got, want)
		}
	}
}

type mirrorable interface{ mirror() map[string]int }

type shardMirror struct {
	hits, purged, missed, lost, shed, admitted, bounced, phases int
}

func (m shardMirror) mirror() map[string]int {
	return map[string]int{
		obs.MetricHits:     m.hits,
		obs.MetricPurged:   m.purged,
		obs.MetricMissed:   m.missed,
		obs.MetricLost:     m.lost,
		obs.MetricShed:     m.shed,
		obs.MetricAdmitted: m.admitted,
		obs.MetricBounced:  m.bounced,
		obs.MetricPhases:   m.phases,
	}
}

// TestSimulateFourShardAcceptance is the tentpole acceptance test: a
// 4-shard federation under the paper's §5.1 workload reports zero
// scheduled-deadline misses, the federation counters reconcile exactly
// with the per-shard registry totals, and the mean per-phase scheduling
// latency per shard is lower than the single-shard run at equal total
// worker count.
func TestSimulateFourShardAcceptance(t *testing.T) {
	const totalWorkers = 8
	w := sectionWorkload(t, totalWorkers)

	run := func(shards int) (*Result, []*obs.Observer) {
		t.Helper()
		tp, err := SplitWorkers(totalWorkers, shards)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		observers := make([]*obs.Observer, shards)
		for i := range observers {
			observers[i] = obs.New(64)
		}
		res, err := Simulate(SimConfig{
			Workload:  w,
			Topology:  tp,
			Placement: AffinityFirst,
			Migrate:   true,
			Obs:       observers,
		})
		if err != nil {
			t.Fatalf("simulate %d shards: %v", shards, err)
		}
		return res, observers
	}

	single, _ := run(1)
	fed, observers := run(4)

	if fed.Routed != len(w.Tasks) {
		t.Fatalf("routed %d tasks, workload has %d", fed.Routed, len(w.Tasks))
	}
	comb := fed.Combined()
	if comb.ScheduledMissed != 0 {
		t.Errorf("federation reported %d scheduled-deadline misses; §4.3 guarantees zero", comb.ScheduledMissed)
	}
	if err := fed.Reconcile(); err != nil {
		t.Errorf("reconcile: %v", err)
	}
	if comb.Hits == 0 {
		t.Error("no task met its deadline; the federation scheduled nothing useful")
	}
	for i, s := range fed.Shards {
		checkRegistryMirror(t, i, observers[i], shardMirror{
			hits: s.Hits, purged: s.Purged, missed: s.ScheduledMissed,
			lost: s.LostToFailure, shed: s.Shed, admitted: s.Admitted,
			bounced: s.Bounced, phases: s.Phases,
		})
	}

	// Mean per-phase scheduling latency: each shard searches a quarter of
	// the batch over a quarter of the workers, so its phases must be
	// cheaper than the single scheduler's. Measured as generated vertices ×
	// VertexCost per phase — the uncapped virtual search time; the reported
	// SchedulingTime is quantum-truncated, which would hide how much search
	// the big batch actually demands.
	meanPhase := func(r *Result) time.Duration {
		vertices := 0
		phases := 0
		for _, s := range r.Shards {
			vertices += s.VerticesGenerated
			phases += s.Phases
		}
		if phases == 0 {
			t.Fatal("no phases ran")
		}
		return time.Duration(vertices) * time.Microsecond / time.Duration(phases)
	}
	sp, fp := meanPhase(single), meanPhase(fed)
	if fp >= sp {
		t.Errorf("mean per-phase scheduling latency did not improve: 4 shards %v >= 1 shard %v", fp, sp)
	}
	t.Logf("mean phase latency: 1 shard %v, 4 shards %v; fed hits=%d/%d migrated=%d",
		sp, fp, comb.Hits, comb.Total, fed.Migrated)
}

// TestSimulateDeterministic re-runs the same configuration and demands
// bit-identical results.
func TestSimulateDeterministic(t *testing.T) {
	w := sectionWorkload(t, 8)
	tp := Topology{Shards: 4, WorkersPerShard: 2}
	run := func() *Result {
		res, err := Simulate(SimConfig{
			Workload:  w,
			Topology:  tp,
			Placement: AffinityFirst,
			Migrate:   true,
			Admission: admission.Config{Policy: admission.Reject, QueueCap: 64, RejectHopeless: true},
		})
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical simulations diverged:\n%+v\n%+v", a.Combined(), b.Combined())
	}
}

// TestSimulateMigration forces admission rejections with a tight queue cap
// and checks the migration books: every bounce is either migrated or
// rejected, migrated tasks reappear in sibling totals, and the federation
// still settles every distinct task exactly once.
func TestSimulateMigration(t *testing.T) {
	w := sectionWorkload(t, 8)
	tp := Topology{Shards: 4, WorkersPerShard: 2}
	res, err := Simulate(SimConfig{
		Workload:  w,
		Topology:  tp,
		Placement: LeastCE,
		Migrate:   true,
		Admission: admission.Config{Policy: admission.Reject, QueueCap: 40},
	})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if res.Bounced == 0 {
		t.Fatal("queue cap 40 over a bursty 1000-task arrival produced no bounces")
	}
	if res.Migrated == 0 {
		t.Error("no bounce migrated despite idle siblings")
	}
	if res.Combined().ScheduledMissed != 0 {
		t.Errorf("migration broke the deadline guarantee: %d scheduled misses", res.Combined().ScheduledMissed)
	}
	// Without migration the same configuration must shed strictly more.
	noMig, err := Simulate(SimConfig{
		Workload:  w,
		Topology:  tp,
		Placement: LeastCE,
		Migrate:   false,
		Admission: admission.Config{Policy: admission.Reject, QueueCap: 40},
	})
	if err != nil {
		t.Fatalf("simulate without migration: %v", err)
	}
	if err := noMig.Reconcile(); err != nil {
		t.Fatalf("reconcile without migration: %v", err)
	}
	if res.Combined().Shed >= noMig.Combined().Shed {
		t.Errorf("migration did not reduce shedding: %d with, %d without", res.Combined().Shed, noMig.Combined().Shed)
	}
}

func TestPlacementPick(t *testing.T) {
	mk := func(alive, overlap, submitted int, rqs time.Duration) ShardView {
		return ShardView{Alive: alive, Overlap: overlap, Submitted: submitted, RQs: rqs}
	}
	tt := &task.Task{ID: 7, Proc: time.Millisecond, Deadline: simtime.Instant(time.Hour)}
	cases := []struct {
		name   string
		policy Placement
		views  []ShardView
		want   int
	}{
		{"affinity wins", AffinityFirst, []ShardView{mk(2, 0, 0, 0), mk(2, 2, 0, time.Second)}, 1},
		{"affinity tie breaks on CE", AffinityFirst, []ShardView{mk(2, 1, 0, time.Second), mk(2, 1, 0, 0)}, 1},
		{"affinity skips dead", AffinityFirst, []ShardView{mk(0, 3, 0, 0), mk(2, 0, 0, 0)}, 1},
		{"least-ce ignores overlap", LeastCE, []ShardView{mk(2, 3, 0, time.Second), mk(2, 0, 0, 0)}, 1},
		{"least-ce tie breaks on submitted", LeastCE, []ShardView{mk(2, 0, 5, 0), mk(2, 0, 1, 0)}, 1},
		{"full tie keeps lowest index", LeastCE, []ShardView{mk(2, 0, 0, 0), mk(2, 0, 0, 0)}, 0},
		{"hashed uses id mod shards", Hashed, []ShardView{mk(2, 0, 0, 0), mk(2, 0, 0, 0), mk(2, 0, 0, 0)}, 1},
		{"hashed walks past dead", Hashed, []ShardView{mk(2, 0, 0, 0), mk(0, 0, 0, 0), mk(2, 0, 0, 0)}, 2},
		{"all dead", AffinityFirst, []ShardView{mk(0, 0, 0, 0), mk(0, 0, 0, 0)}, -1},
	}
	for _, c := range cases {
		if got := c.policy.Pick(tt, c.views, nil); got != c.want {
			t.Errorf("%s: picked %d, want %d", c.name, got, c.want)
		}
	}
}

func TestShardViewFeasible(t *testing.T) {
	now := simtime.Instant(0)
	tt := &task.Task{ID: 1, Proc: 4 * time.Millisecond, Deadline: simtime.Instant(10 * time.Millisecond)}
	cases := []struct {
		name string
		v    ShardView
		want bool
	}{
		{"idle local", ShardView{Alive: 2}, true},
		{"queued within slack", ShardView{Alive: 2, RQs: 5 * time.Millisecond}, true},
		{"queued past deadline", ShardView{Alive: 2, RQs: 7 * time.Millisecond}, false},
		{"remote cost tips it", ShardView{Alive: 2, RQs: 5 * time.Millisecond, Comm: 2 * time.Millisecond}, false},
		{"dead shard", ShardView{Alive: 0}, false},
		{"sealed shard", ShardView{Alive: 2, Sealed: true}, false},
	}
	for _, c := range cases {
		if got := c.v.Feasible(tt, now); got != c.want {
			t.Errorf("%s: feasible = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSplitWorkers(t *testing.T) {
	if tp, err := SplitWorkers(8, 4); err != nil || tp.WorkersPerShard != 2 {
		t.Errorf("SplitWorkers(8,4) = %+v, %v", tp, err)
	}
	if _, err := SplitWorkers(7, 2); err == nil {
		t.Error("SplitWorkers(7,2) accepted an uneven split")
	}
	if _, err := SplitWorkers(4, 0); err == nil {
		t.Error("SplitWorkers(4,0) accepted zero shards")
	}
}

func TestSplitFaults(t *testing.T) {
	tp := Topology{Shards: 2, WorkersPerShard: 2}
	plan := &faultinject.Plan{
		Kills: []faultinject.Kill{{Worker: 3, At: 5}},
		Drops: []faultinject.Drop{{Worker: 0, Count: 2}},
	}
	split, err := SplitFaults(plan, tp)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if split[0] == nil || len(split[0].Drops) != 1 || split[0].Drops[0].Worker != 0 {
		t.Errorf("shard 0 plan wrong: %+v", split[0])
	}
	if split[1] == nil || len(split[1].Kills) != 1 || split[1].Kills[0].Worker != 1 {
		t.Errorf("shard 1 plan: kill of global worker 3 should be local worker 1: %+v", split[1])
	}
	if _, err := SplitFaults(&faultinject.Plan{Kills: []faultinject.Kill{{Worker: faultinject.RandWorker}}}, tp); err == nil {
		t.Error("random-victim kill accepted across 2 shards")
	}
	if _, err := SplitFaults(&faultinject.Plan{Kills: []faultinject.Kill{{Worker: 4}}}, tp); err == nil {
		t.Error("out-of-range victim accepted")
	}
	if got, _ := SplitFaults(nil, tp); got[0] != nil || got[1] != nil {
		t.Error("nil plan should split into nil shard plans")
	}
}

func TestLocalizeAndShardWorkload(t *testing.T) {
	w := sectionWorkload(t, 8)
	tp := Topology{Shards: 4, WorkersPerShard: 2}
	for shard := 0; shard < tp.Shards; shard++ {
		sw := ShardWorkload(w, tp, shard)
		if sw.Params.Workers != 2 {
			t.Fatalf("shard workload has %d workers", sw.Params.Workers)
		}
		base := shard * tp.WorkersPerShard
		for sub, global := range w.Placement {
			local := sw.Placement[sub]
			for k := 0; k < tp.WorkersPerShard; k++ {
				if global.Has(base+k) != local.Has(k) {
					t.Fatalf("shard %d sub %d: global worker %d vs local %d disagree", shard, sub, base+k, k)
				}
			}
		}
	}
	tt := w.Tasks[0]
	lt := Localize(tt, tp, 1)
	if lt.ID != tt.ID || lt.Deadline != tt.Deadline || lt.Proc != tt.Proc {
		t.Error("localize changed task identity")
	}
	for k := 0; k < tp.WorkersPerShard; k++ {
		if lt.Affinity.Has(k) != tt.Affinity.Has(tp.WorkersPerShard+k) {
			t.Errorf("localized affinity bit %d disagrees with global worker %d", k, tp.WorkersPerShard+k)
		}
	}
}

// TestFederationLiveTwoShards runs a small live 2-shard federation with a
// tight admission gate so migrations actually happen, and checks the
// federation-wide accounting plus the per-shard registry mirror.
func TestFederationLiveTwoShards(t *testing.T) {
	p := workload.DefaultParams(4)
	p.NumTransactions = 48
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	f, err := New(Config{
		Workload:   w,
		Topology:   Topology{Shards: 2, WorkersPerShard: 2},
		Placement:  AffinityFirst,
		Migrate:    true,
		Scale:      200,
		Admission:  admission.Config{Policy: admission.Reject, QueueCap: 8},
		SlackGuard: 25 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := res.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if res.Routed != len(w.Tasks) {
		t.Errorf("routed %d of %d tasks", res.Routed, len(w.Tasks))
	}
	for i, s := range res.Shards {
		checkRegistryMirror(t, i, f.ShardObserver(i), shardMirror{
			hits: s.Hits, purged: s.Purged, missed: s.ScheduledMissed,
			lost: s.LostToFailure, shed: s.Shed, admitted: s.Admitted,
			bounced: s.Bounced, phases: s.Phases,
		})
	}
	// The router's own registry must mirror the Result exactly.
	snap := f.Registry().Snapshot()
	for name, want := range map[string]int{
		MetricRouted:   res.Routed,
		MetricMigrated: res.Migrated,
		MetricBounced:  res.Bounced,
		MetricRejected: res.Rejected,
	} {
		if got := snap[name]; got != int64(want) {
			t.Errorf("federation registry %s = %d, result says %d", name, got, want)
		}
	}
	for i, n := range res.PerShardRouted {
		if got := snap[fmt.Sprintf(MetricRoutedShardPattern, i)]; got != int64(n) {
			t.Errorf("per-shard routed counter %d = %d, result says %d", i, got, n)
		}
	}
	t.Logf("live 2-shard: %s", res.Combined())
}

// TestSimulateShardEvents kills shard 1 partway through the arrival stream
// and rejoins it later, all on the virtual clock: the run must stay
// bit-reproducible, every identity in Reconcile must hold across the
// kill→salvage→rejoin cycle, the rejoin must be counted, and the death must
// leave salvage evidence — tasks re-placed on siblings or explicitly lost.
func TestSimulateShardEvents(t *testing.T) {
	// Bursty arrivals all land at virtual time zero, which would collapse
	// every kill instant onto the first routing decision; Poisson arrivals
	// spread the stream so the kill genuinely interrupts a part-routed run.
	p := workload.DefaultParams(8)
	p.Arrival = workload.Poisson
	p.MeanInterArrival = 20 * time.Microsecond
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	arrivals := make([]simtime.Instant, len(w.Tasks))
	for i, tk := range w.Tasks {
		arrivals[i] = tk.Arrival
	}
	sort.Slice(arrivals, func(a, b int) bool { return arrivals[a].Before(arrivals[b]) })
	killAt := arrivals[len(arrivals)/4]
	rejoinAt := arrivals[len(arrivals)/2]
	cfg := SimConfig{
		Workload:  w,
		Topology:  Topology{Shards: 4, WorkersPerShard: 2},
		Placement: AffinityFirst,
		Migrate:   true,
		Admission: admission.Config{Policy: admission.Reject, QueueCap: 64},
		ShardEvents: []ShardEvent{
			{At: killAt, Shard: 1, Kind: ShardKill},
			{At: rejoinAt, Shard: 1, Kind: ShardRejoin},
		},
	}
	run := func() *Result {
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		return res
	}
	res, again := run(), run()
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("shard events broke determinism:\n%+v\n%+v", res.Combined(), again.Combined())
	}
	if err := res.Reconcile(); err != nil {
		t.Fatalf("reconcile across kill→salvage→rejoin: %v", err)
	}
	if res.Rejoins != 1 {
		t.Errorf("rejoins = %d, want exactly 1", res.Rejoins)
	}
	if res.Salvaged+res.SalvageLost == 0 {
		t.Error("the kill left no salvage evidence: nothing migrated off or lost with the dead shard")
	}
	if res.Salvaged > 0 && res.Migrated < res.Salvaged {
		t.Errorf("salvaged %d exceeds migrated %d", res.Salvaged, res.Migrated)
	}

	// The rejoined shard must be placeable again: a task arriving after the
	// rejoin can land on shard 1, so its books keep growing past the fold.
	dead, err := Simulate(SimConfig{
		Workload:  w,
		Topology:  cfg.Topology,
		Placement: cfg.Placement,
		Migrate:   cfg.Migrate,
		Admission: cfg.Admission,
		ShardEvents: []ShardEvent{
			{At: killAt, Shard: 1, Kind: ShardKill},
		},
	})
	if err != nil {
		t.Fatalf("simulate without rejoin: %v", err)
	}
	if err := dead.Reconcile(); err != nil {
		t.Fatalf("reconcile without rejoin: %v", err)
	}
	if dead.Rejoins != 0 {
		t.Errorf("rejoins = %d without a rejoin event", dead.Rejoins)
	}
	if res.Shards[1].Total <= dead.Shards[1].Total {
		t.Errorf("rejoin placed no new work on shard 1: total %d with rejoin, %d without",
			res.Shards[1].Total, dead.Shards[1].Total)
	}

	// Event validation: out-of-range shards and unknown kinds are rejected.
	if _, err := Simulate(SimConfig{
		Workload: w, Topology: cfg.Topology,
		ShardEvents: []ShardEvent{{At: killAt, Shard: 9, Kind: ShardKill}},
	}); err == nil {
		t.Error("Simulate accepted an event for a shard outside the topology")
	}
	if _, err := Simulate(SimConfig{
		Workload: w, Topology: cfg.Topology,
		ShardEvents: []ShardEvent{{At: killAt, Shard: 1, Kind: "explode"}},
	}); err == nil {
		t.Error("Simulate accepted an unknown event kind")
	}
	t.Logf("sim shard events: rejoins=%d salvaged=%d salvage-lost=%d shard1 total=%d (dead-run total=%d)",
		res.Rejoins, res.Salvaged, res.SalvageLost, res.Shards[1].Total, dead.Shards[1].Total)
}
