// Command rtsched regenerates the paper's evaluation: every figure and the
// ablation tables, printed as aligned text (and optionally CSV series).
//
// Usage:
//
//	rtsched -exp all                 # the full evaluation, paper methodology
//	rtsched -exp fig5                # Figure 5: hit ratio vs processors
//	rtsched -exp fig6 -csv out/      # Figure 6 plus CSV series
//	rtsched -exp quantum -runs 20    # quantum ablation with 20 runs/point
//
// Experiments: fig5, fig6, laxity, quantum, deadend, cost, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"rtsads/internal/affinity"
	"rtsads/internal/core"
	"rtsads/internal/experiment"
	"rtsads/internal/machine"
	"rtsads/internal/obs"
	"rtsads/internal/policy"
	"rtsads/internal/spec"
	"rtsads/internal/task"
	"rtsads/internal/trace"
	"rtsads/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rtsched:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rtsched", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run: fig5, fig6, laxity, quantum, deadend, cost, reclaim, prune, poisson, mesh, placement, failure, host, heuristics, all")
	runs := fs.Int("runs", 10, "independent runs per data point (the paper uses 10)")
	seed := fs.Uint64("seed", 1, "base seed; run i uses seed+i")
	vertexCost := fs.Duration("vertexcost", time.Microsecond, "scheduling time charged per search vertex")
	parallel := fs.Int("parallel", 0, "run each phase's search on up to N work-stealing workers (0 = sequential)")
	stealDepth := fs.Int("steal-depth", 0, "tree levels cut into stealable frames when -parallel is set (0 = default)")
	frontierCap := fs.Int("frontier-cap", 0, "per-engine bound on published stealable frames (0 = default)")
	dupCap := fs.Int("dup-cap", 0, "per-frame duplicate-state table capacity; -1 disables duplicate detection (0 = default)")
	csvDir := fs.String("csv", "", "directory to write per-figure CSV series into (optional)")
	specPath := fs.String("spec", "", "run a custom JSON experiment spec instead of a built-in experiment")
	chromeOut := fs.String("chrometrace", "", "run one traced RT-SADS run (P=10, defaults) and write Chrome trace-event JSON to this file")
	taskTraceOut := fs.String("task-trace", "", "run one traced RT-SADS run (P=10, defaults) and write a task-per-track lifecycle Chrome trace to this file")
	plotFlag := fs.Bool("plot", false, "also draw each figure as an ASCII chart")
	dumpTasks := fs.String("dumptasks", "", "write the default workload's task set as JSON to this file and exit")
	runTasks := fs.String("runtasks", "", "run a task set previously written with -dumptasks (or an external trace) under -policy")
	taskWorkers := fs.Int("workers", 10, "working processors for -dumptasks/-runtasks")
	policyName := fs.String("policy", "RT-SADS", "scheduling policy for -runtasks; 'list' prints the registry and exits")
	tournamentFlag := fs.Bool("tournament", false, "race every registered policy over the workload corpus (-runs seeds per cell)")
	tournamentOut := fs.String("tournament-out", "", "also write the tournament report as JSONL to this file")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, expvar and pprof on this address while experiments run (e.g. :8077 or :0)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *policyName == "list" {
		return policy.Default().Describe(out)
	}
	if _, ok := policy.Default().Lookup(*policyName); !ok {
		return fmt.Errorf("unknown policy %q (run '-policy list' to see the registry)", *policyName)
	}

	// The debug endpoint profiles long experiment sweeps; single-machine
	// runs (-chrometrace, -runtasks) also feed it live scheduling metrics
	// through the same obs hooks the live cluster uses.
	var observer *obs.Observer
	if *debugAddr != "" {
		observer = obs.New(0)
		srv, err := obs.Serve(*debugAddr, observer)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "debug endpoint: %s (/metrics /debug/pprof /debug/vars)\n", srv.URL())
	}

	if *chromeOut != "" {
		return writeChromeTrace(*chromeOut, *seed, observer, out)
	}
	if *taskTraceOut != "" {
		return writeTaskFlowTrace(*taskTraceOut, *seed, observer, out)
	}
	if *dumpTasks != "" {
		return dumpTaskSet(*dumpTasks, *taskWorkers, *seed, out)
	}
	if *runTasks != "" {
		return runTaskSet(*runTasks, *taskWorkers, *policyName, observer, out)
	}
	if *tournamentFlag {
		return runTournament(*runs, *seed, *tournamentOut, observer, out)
	}

	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return fmt.Errorf("open spec: %w", err)
		}
		defer f.Close()
		sp, err := spec.Parse(f)
		if err != nil {
			return err
		}
		fig, err := sp.Run()
		if err != nil {
			return err
		}
		return (runner{out: out, csvDir: *csvDir, plot: *plotFlag}).emitFigure(fig)
	}

	rc := experiment.DefaultRunConfig()
	rc.Runs = *runs
	rc.BaseSeed = *seed
	rc.VertexCost = *vertexCost
	rc.Parallel = *parallel
	rc.StealDepth = *stealDepth
	rc.FrontierCap = *frontierCap
	rc.DupCap = *dupCap
	if err := rc.Validate(); err != nil {
		return err
	}

	r := runner{rc: rc, out: out, csvDir: *csvDir, plot: *plotFlag}
	switch *exp {
	case "fig5":
		return r.fig5()
	case "fig6":
		return r.fig6()
	case "laxity":
		return r.laxity()
	case "quantum":
		return r.quantum()
	case "deadend":
		return r.deadend()
	case "cost":
		return r.cost()
	case "reclaim":
		return r.reclaim()
	case "prune":
		return r.prune()
	case "poisson":
		return r.poisson()
	case "mesh":
		return r.mesh()
	case "placement":
		return r.placement()
	case "failure":
		return r.failure()
	case "host":
		return r.host()
	case "heuristics":
		return r.heuristics()
	case "all":
		for _, f := range []func() error{r.fig5, r.fig6, r.laxity, r.quantum, r.deadend, r.cost, r.reclaim, r.prune, r.poisson, r.mesh, r.placement, r.failure, r.host, r.heuristics} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want fig5, fig6, laxity, quantum, deadend, cost, reclaim, prune, poisson, mesh, placement, failure, host, heuristics or all)", *exp)
	}
}

type runner struct {
	rc     experiment.RunConfig
	out    io.Writer
	csvDir string
	plot   bool
}

func (r runner) emitFigure(fig *experiment.Figure) error {
	if err := fig.Render(r.out); err != nil {
		return err
	}
	if r.plot {
		if err := fig.RenderPlot(r.out); err != nil {
			return err
		}
		fmt.Fprintln(r.out)
	}
	if r.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(r.csvDir, fig.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := fig.RenderCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(r.out, "# wrote %s\n\n", path)
	return nil
}

func (r runner) fig5() error {
	fig, err := experiment.Fig5(r.rc)
	if err != nil {
		return err
	}
	return r.emitFigure(fig)
}

func (r runner) fig6() error {
	fig, err := experiment.Fig6(r.rc)
	if err != nil {
		return err
	}
	return r.emitFigure(fig)
}

func (r runner) laxity() error {
	figs, err := experiment.Laxity(r.rc)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		if err := r.emitFigure(fig); err != nil {
			return err
		}
	}
	return nil
}

func (r runner) quantum() error {
	rows, err := experiment.QuantumAblation(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderQuantumRows(r.out, rows)
}

func (r runner) deadend() error {
	rows, err := experiment.DeadEnds(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderDeadEndRows(r.out, rows)
}

func (r runner) cost() error {
	rows, err := experiment.SchedulingCost(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderCostRows(r.out, rows)
}

func (r runner) reclaim() error {
	rows, err := experiment.Reclaiming(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderReclaimRows(r.out, rows)
}

func (r runner) prune() error {
	rows, err := experiment.Pruning(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderPruneRows(r.out, rows)
}

func (r runner) poisson() error {
	fig, err := experiment.PoissonLoad(r.rc)
	if err != nil {
		return err
	}
	return r.emitFigure(fig)
}

// writeChromeTrace runs one default traced RT-SADS run and exports its
// timeline in Chrome trace-event JSON (chrome://tracing, Perfetto).
func writeChromeTrace(path string, seed uint64, observer *obs.Observer, out io.Writer) error {
	p := workload.DefaultParams(10)
	p.Seed = seed
	w, err := workload.Generate(p)
	if err != nil {
		return err
	}
	planner, err := experiment.NewPlanner(experiment.RTSADS, w, experiment.DefaultRunConfig())
	if err != nil {
		return err
	}
	timeline := trace.NewLog(0)
	m, err := machine.New(machine.Config{Workers: p.Workers, Planner: planner, Trace: timeline, Obs: observer})
	if err != nil {
		return err
	}
	res, err := m.Run(w.Tasks)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := timeline.WriteChromeTrace(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(out, "run: %s\nwrote %s (%d events) — open in chrome://tracing or Perfetto\n",
		res, path, timeline.Len())
	return nil
}

// writeTaskFlowTrace runs one default RT-SADS run against a journaling
// observer and exports the task-per-track lifecycle view: one Chrome trace
// track per task, showing queueing, delivery and execution as one story.
func writeTaskFlowTrace(path string, seed uint64, observer *obs.Observer, out io.Writer) error {
	if observer == nil {
		observer = obs.New(0)
	}
	p := workload.DefaultParams(10)
	p.Seed = seed
	w, err := workload.Generate(p)
	if err != nil {
		return err
	}
	planner, err := experiment.NewPlanner(experiment.RTSADS, w, experiment.DefaultRunConfig())
	if err != nil {
		return err
	}
	m, err := machine.New(machine.Config{Workers: p.Workers, Planner: planner, Obs: observer})
	if err != nil {
		return err
	}
	res, err := m.Run(w.Tasks)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := observer.Journal().WriteTaskFlowTrace(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(out, "run: %s\nwrote %s (task-flow trace) — open in chrome://tracing or Perfetto\n", res, path)
	return nil
}

func (r runner) failure() error {
	rows, err := experiment.Failures(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderFailureRows(r.out, rows)
}

// dumpTaskSet generates the default workload for the given machine size
// and writes its task set in the JSON interchange format.
func dumpTaskSet(path string, workers int, seed uint64, out io.Writer) error {
	p := workload.DefaultParams(workers)
	p.Seed = seed
	w, err := workload.Generate(p)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := workload.SaveTasks(f, w.Tasks); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(out, "wrote %d tasks to %s\n", len(w.Tasks), path)
	return nil
}

// runTaskSet replays an imported task set under the selected policy on the
// deterministic machine — the bring-your-own-trace path.
func runTaskSet(path string, workers int, policyName string, observer *obs.Observer, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	tasks, err := workload.LoadTasks(f)
	if err != nil {
		return err
	}
	model := affinity.CostModel{Remote: 2 * time.Millisecond}
	planner, err := policy.Default().New(policyName, policy.Options{Search: core.SearchConfig{
		Workers: workers,
		Comm: func(t *task.Task, proc int) time.Duration {
			return model.Cost(t.Affinity, proc)
		},
		VertexCost: time.Microsecond,
		PhaseCost:  25 * time.Microsecond,
		Policy:     core.NewAdaptive(),
	}})
	if err != nil {
		return err
	}
	m, err := machine.New(machine.Config{Workers: workers, Planner: planner, Obs: observer})
	if err != nil {
		return err
	}
	res, err := m.Run(tasks)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", res)
	return nil
}

// runTournament races every registered policy over the standard corpus and
// renders the table; the JSONL mirror and the /metrics gauges are for
// machines.
func runTournament(runs int, seed uint64, jsonlPath string, observer *obs.Observer, out io.Writer) error {
	report, err := policy.Tournament(policy.TournamentConfig{Runs: runs, BaseSeed: seed})
	if report == nil {
		return err
	}
	if rerr := report.Render(out); rerr != nil && err == nil {
		err = rerr
	}
	if jsonlPath != "" {
		f, ferr := os.Create(jsonlPath)
		if ferr != nil {
			return fmt.Errorf("create %s: %w", jsonlPath, ferr)
		}
		defer f.Close()
		if werr := report.WriteJSONL(f); werr != nil && err == nil {
			err = fmt.Errorf("write %s: %w", jsonlPath, werr)
		}
		fmt.Fprintf(out, "# wrote %s\n", jsonlPath)
	}
	if observer != nil {
		report.Mirror(observer.Registry())
	}
	return err
}

func (r runner) heuristics() error {
	rows, err := experiment.Heuristics(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderHeuristicRows(r.out, rows)
}

func (r runner) host() error {
	rows, err := experiment.HostArchitecture(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderHostRows(r.out, rows)
}

func (r runner) placement() error {
	rows, err := experiment.Placement(r.rc)
	if err != nil {
		return err
	}
	return experiment.RenderPlacementRows(r.out, rows)
}

func (r runner) mesh() error {
	// 11 nodes: the 10 workers plus the host, 350KB transfers — the size
	// whose serialisation matches the experiments' remote cost C = 2ms.
	res, err := experiment.MeshCheck(11, 350_000, r.rc.BaseSeed)
	if err != nil {
		return err
	}
	return res.Render(r.out)
}
