package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInproc(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-workers", "3", "-txns", "60", "-scale", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "hit ratio:") {
		t.Errorf("output missing summary: %q", out.String())
	}
}

func TestRunInprocWithFaults(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-workers", "3", "-txns", "60", "-scale", "50", "-sf", "4",
		"-faults", "kill=0@500us"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "faults: 1 worker(s) failed") {
		t.Errorf("output missing fault summary: %q", out.String())
	}
}

func TestRunBadFaultSpec(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "explode=now"}, &out); err == nil {
		t.Error("bad fault spec accepted")
	}
}

func TestRunBadRole(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-role", "nope"}, &out); err == nil {
		t.Error("bad role accepted")
	}
}

func TestRunWorkerNeedsListen(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-role", "worker"}, &out); err == nil {
		t.Error("worker without -listen accepted")
	}
}

func TestRunHostNeedsConnect(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-role", "host"}, &out); err == nil {
		t.Error("host without -connect accepted")
	}
}

func TestRunFederation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-workers", "4", "-shards", "2", "-txns", "48", "-scale", "100",
		"-admission", "reject", "-queue-cap", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"topology: 2 shard(s) × 2 worker(s) (4 total)",
		"placement affinity, migration on",
		"shard 0:", "shard 1:",
		"federation:", "routing: 48 routed",
		"hit ratio:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFederationTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"uneven split", []string{"-workers", "5", "-shards", "2"}, "divide evenly"},
		{"zero shards", []string{"-workers", "4", "-shards", "0"}, "must be positive"},
		{"host role", []string{"-role", "host", "-connect", "x:1,y:2", "-shards", "2"}, "requires -role inproc"},
		{"bad placement", []string{"-workers", "4", "-shards", "2", "-placement", "roulette"}, "unknown placement"},
		{"trace unsupported", []string{"-workers", "4", "-shards", "2", "-trace", "out.json"}, "attach to a single cluster"},
		{"random fault victim", []string{"-workers", "4", "-shards", "2", "-faults", "kill=rand@1ms"}, "ambiguous"},
	}
	for _, c := range cases {
		var out strings.Builder
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: accepted %v", c.name, c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestSplitAddrs(t *testing.T) {
	got := splitAddrs(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitAddrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitAddrs = %v, want %v", got, want)
		}
	}
	if splitAddrs("") != nil {
		t.Error("empty input should return nil")
	}
}

// TestRunObservability is the issue's acceptance command: a faulted run
// with the debug endpoint, trace and journal on must produce a valid
// Perfetto-loadable Chrome trace and a JSONL journal, and report the files.
func TestRunObservability(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	journalPath := filepath.Join(dir, "run.jsonl")
	var out strings.Builder
	err := run([]string{"-workers", "3", "-txns", "60", "-scale", "50", "-sf", "4",
		"-faults", "kill=0@500us", "-debug-addr", "127.0.0.1:0",
		"-trace", tracePath, "-journal", journalPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "debug endpoint: http://") {
		t.Errorf("output missing debug endpoint line: %q", out.String())
	}
	if !strings.Contains(out.String(), "wrote "+tracePath) {
		t.Errorf("output missing trace note: %q", out.String())
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var sawPhase, sawExec, sawDown, sawReroute bool
	for _, e := range events {
		name, _ := e["name"].(string)
		switch {
		case strings.HasPrefix(name, "phase "):
			sawPhase = true
		case strings.HasPrefix(name, "task "):
			sawExec = true
		case strings.Contains(name, "down"):
			sawDown = true
		case strings.HasPrefix(name, "reroute"):
			sawReroute = true
		}
	}
	if !sawPhase || !sawExec || !sawDown || !sawReroute {
		t.Errorf("trace missing events: phase=%v exec=%v down=%v reroute=%v",
			sawPhase, sawExec, sawDown, sawReroute)
	}

	jraw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(jraw)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("journal line %q is not valid JSON: %v", line, err)
		}
	}
	if !strings.Contains(string(jraw), `"worker-down"`) {
		t.Error("journal has no worker-down entry")
	}
}

func TestRunTraceLimit(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	var out strings.Builder
	err := run([]string{"-workers", "2", "-txns", "60", "-scale", "50",
		"-trace", tracePath, "-trace-limit", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events dropped at the limit") {
		t.Errorf("truncated trace not reported: %q", out.String())
	}
}

func TestRunBadDebugAddr(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workers", "2", "-txns", "10", "-debug-addr", "256.0.0.1:-1"}, &out); err == nil {
		t.Error("bad debug address accepted")
	}
}

// TestRunLivenessFlagValidation pins the flag-parse-time checks on the
// liveness and recovery knobs: misconfigurations fail fast with an error
// naming the offending flag instead of surfacing mid-run as spurious
// death verdicts.
func TestRunLivenessFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative heartbeat", []string{"-heartbeat", "-1s"}, "-heartbeat"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout"},
		{"timeout not above heartbeat", []string{"-heartbeat", "100ms", "-timeout", "100ms"}, "must exceed -heartbeat"},
		{"negative rejoin budget", []string{"-rejoin-max", "-2"}, "-rejoin-max"},
		{"rejoin without tcp shards", []string{"-workers", "4", "-shards", "2", "-rejoin"}, "no process to restart"},
	}
	for _, c := range cases {
		var out strings.Builder
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: accepted %v", c.name, c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
