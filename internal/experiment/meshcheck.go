package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"rtsads/internal/mesh"
	"rtsads/internal/rng"
	"rtsads/internal/simtime"
)

// MeshResult is experiment E11: a validation of the paper's constant-C
// communication model against a Paragon-like 2D wormhole mesh.
type MeshResult struct {
	Config mesh.Config
	// Size is the modelled remote transfer (bytes) whose serialisation
	// time corresponds to the experiments' constant C.
	Size int
	// DistanceRows: contention-free latency per hop count.
	DistanceRows []MeshDistanceRow
	// ContentionRows: mean latency under increasing simultaneous traffic.
	ContentionRows []MeshContentionRow
}

// MeshDistanceRow is the latency of one transfer across a given distance.
type MeshDistanceRow struct {
	Hops    int
	Latency time.Duration
	// RelToOne is Latency relative to the one-hop latency (1.0 = equal).
	RelToOne float64
}

// MeshContentionRow is mean delivery latency when n messages are injected
// simultaneously from random sources to random destinations.
type MeshContentionRow struct {
	Senders     int
	MeanLatency time.Duration
	MaxLatency  time.Duration
	Blocked     time.Duration // cumulative channel-wait across all messages
}

// MeshCheck measures (a) how much distance contributes to wormhole transfer
// latency — the paper's justification for the constant C — and (b) how
// quickly contention breaks the constant-cost assumption as simultaneous
// remote traffic grows.
func MeshCheck(nodes, size int, seed uint64) (*MeshResult, error) {
	cfg := mesh.DefaultConfig(nodes)
	m, err := mesh.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &MeshResult{Config: cfg, Size: size}

	maxHops := cfg.Rows - 1 + cfg.Cols - 1
	base := cfg.Latency(1, size)
	for h := 1; h <= maxHops; h++ {
		l := cfg.Latency(h, size)
		res.DistanceRows = append(res.DistanceRows, MeshDistanceRow{
			Hops:     h,
			Latency:  l,
			RelToOne: float64(l) / float64(base),
		})
	}

	r := rng.New(seed)
	for _, senders := range []int{1, 2, 4, 8, 16} {
		m.Reset()
		var sum, max time.Duration
		for i := 0; i < senders; i++ {
			src := r.Intn(cfg.Nodes())
			dst := r.Intn(cfg.Nodes())
			for dst == src {
				dst = r.Intn(cfg.Nodes())
			}
			arrive, err := m.Send(src, dst, size, 0)
			if err != nil {
				return nil, err
			}
			d := arrive.Sub(simtime.Instant(0))
			sum += d
			if d > max {
				max = d
			}
		}
		res.ContentionRows = append(res.ContentionRows, MeshContentionRow{
			Senders:     senders,
			MeanLatency: sum / time.Duration(senders),
			MaxLatency:  max,
			Blocked:     m.Blocked(),
		})
	}
	return res, nil
}

// Render writes the mesh validation as tables.
func (r *MeshResult) Render(w io.Writer) error {
	var b strings.Builder
	title := fmt.Sprintf("Interconnect check — %dx%d wormhole mesh, %dKB transfers (validates constant-C)",
		r.Config.Rows, r.Config.Cols, r.Size/1000)
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))

	table := [][]string{{"hops", "latency", "vs 1 hop"}}
	for _, row := range r.DistanceRows {
		table = append(table, []string{
			fmt.Sprintf("%d", row.Hops),
			row.Latency.String(),
			fmt.Sprintf("%+.4f%%", 100*(row.RelToOne-1)),
		})
	}
	writeAligned(&b, table)
	b.WriteString("\n")

	table = [][]string{{"simultaneous msgs", "mean latency", "max latency", "channel wait"}}
	for _, row := range r.ContentionRows {
		table = append(table, []string{
			fmt.Sprintf("%d", row.Senders),
			row.MeanLatency.String(),
			row.MaxLatency.String(),
			row.Blocked.String(),
		})
	}
	writeAligned(&b, table)
	b.WriteString("# Distance is noise (router delay ≪ serialisation) — the paper's constant-C\n")
	b.WriteString("# model holds — but heavy simultaneous traffic serialises on shared channels,\n")
	b.WriteString("# which bounds the model's validity to moderate remote-access rates.\n\n")
	_, err := io.WriteString(w, b.String())
	return err
}
