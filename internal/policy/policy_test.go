package policy

import (
	"strings"
	"testing"
	"time"

	"rtsads/internal/core"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
)

func testOptions(workers int) Options {
	return Options{Search: core.SearchConfig{
		Workers:    workers,
		Comm:       func(*task.Task, int) time.Duration { return 0 },
		VertexCost: time.Microsecond,
		PhaseCost:  25 * time.Microsecond,
		Policy:     core.NewAdaptive(),
	}}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	spec := Spec{Name: "x", New: func(Options) (core.Planner, error) { return nil, nil }}
	if err := r.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(spec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegistryUnknownListsNames(t *testing.T) {
	_, err := Default().New("no-such-policy", testOptions(2))
	if err == nil {
		t.Fatal("unknown policy constructed")
	}
	if !strings.Contains(err.Error(), "RT-SADS") {
		t.Fatalf("error does not list the registry: %v", err)
	}
}

func TestBuiltinsConstruct(t *testing.T) {
	reg := Default()
	names := reg.Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d policies, the tournament needs at least 7", len(names))
	}
	for _, name := range names {
		p, err := reg.New(name, testOptions(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: planner reports an empty name", name)
		}
		pred, err := reg.NewPredicate(name, testOptions(4))
		if err != nil {
			t.Fatalf("%s predicate: %v", name, err)
		}
		if pred == nil {
			t.Fatalf("%s: no admission quick-test", name)
		}
	}
}

func TestDescribeCoversRegistry(t *testing.T) {
	var sb strings.Builder
	if err := Default().Describe(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range Default().Names() {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("Describe output missing %q:\n%s", name, sb.String())
		}
	}
}

func TestLadder(t *testing.T) {
	opts := testOptions(2)
	planner, ctl, err := Default().Ladder(opts, core.DegradeConfig{}, "RT-SADS", "EDF-greedy", "myopic")
	if err != nil {
		t.Fatal(err)
	}
	if planner == nil || ctl == nil {
		t.Fatal("three-rung ladder returned a nil planner or controller")
	}
	planner, ctl, err = Default().Ladder(opts, core.DegradeConfig{}, "EDF-greedy")
	if err != nil {
		t.Fatal(err)
	}
	if planner == nil || ctl != nil {
		t.Fatal("single-rung ladder should return the bare planner and no controller")
	}
	if _, _, err := Default().Ladder(opts, core.DegradeConfig{}, "RT-SADS", "bogus"); err == nil {
		t.Fatal("ladder accepted an unknown rung")
	}
}

// TestPrioritizerOrdersDiffer proves the four list orders are genuinely
// distinct priorities, not aliases: one crafted batch on which EDF, LST,
// SCT and RM all commit to a different permutation.
func TestPrioritizerOrdersDiffer(t *testing.T) {
	us := func(n int64) simtime.Instant { return simtime.Instant(time.Duration(n) * time.Microsecond) }
	mk := func(id int, arrUs, procUs, dUs int64) *task.Task {
		return &task.Task{
			ID:       task.ID(id),
			Arrival:  us(arrUs),
			Proc:     time.Duration(procUs) * time.Microsecond,
			Deadline: us(dUs),
		}
	}
	// Keys per task: deadline (EDF), deadline−proc (LST), proc (SCT),
	// deadline−arrival (RM/DM).
	batch := func() []*task.Task {
		return []*task.Task{
			mk(1, 0, 95, 100), // d=100 lax=5  p=95 w=100
			mk(2, 0, 50, 60),  // d=60  lax=10 p=50 w=60
			mk(3, 55, 20, 90), // d=90  lax=70 p=20 w=35
			mk(4, 80, 60, 85), // d=85  lax=25 p=60 w=5
		}
	}
	want := map[string][]task.ID{
		"EDF": {2, 4, 3, 1},
		"LST": {1, 2, 4, 3},
		"SCT": {3, 2, 4, 1},
		"RM":  {4, 3, 2, 1},
	}
	for _, p := range []Prioritizer{EDF(), LST(), SCT(), RM()} {
		b := batch()
		p.Order(0, b)
		got := make([]task.ID, len(b))
		for i, tk := range b {
			got[i] = tk.ID
		}
		w := want[p.Name]
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s ordered %v, want %v", p.Name, got, w)
			}
		}
	}
	// Pairwise distinct: the map above holds four different permutations.
	seen := map[string]string{}
	for name, perm := range want {
		key := ""
		for _, id := range perm {
			key += string(rune('0' + id))
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("crafted batch fails to separate %s from %s", name, prev)
		}
		seen[key] = name
	}
}

func TestNewListPlanner(t *testing.T) {
	p, err := NewListPlanner(testOptions(2).Search, Prioritizer{
		Name:  "FIFO",
		Order: func(_ simtime.Instant, b []*task.Task) { task.SortEDF(b) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "FIFO" {
		t.Fatalf("list planner named %q, want FIFO", p.Name())
	}
}
