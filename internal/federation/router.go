package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rtsads/internal/admission"
	"rtsads/internal/core"
	"rtsads/internal/experiment"
	"rtsads/internal/faultinject"
	"rtsads/internal/livecluster"
	"rtsads/internal/metrics"
	"rtsads/internal/obs"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
	"rtsads/internal/workload"
)

// Config configures a live federated run.
type Config struct {
	// Workload is the global problem instance; its Params.Workers must
	// equal Topology.TotalWorkers(). Required.
	Workload *workload.Workload
	// Topology partitions the worker pool. Required.
	Topology Topology
	// Placement selects the routing policy (default affinity-first).
	Placement Placement
	// Migrate enables deadline-safe cross-shard migration of rejected
	// tasks; without it every shard rejection is shed locally.
	Migrate bool

	// Algorithm, Scale, Liveness, Admission, Backpressure, SlackGuard,
	// Degrade and the Parallel/StealDepth/FrontierCap/DupCap search knobs
	// configure every shard identically; see livecluster.Config. Faults is
	// a global plan split by worker range across the shards.
	Algorithm    experiment.Algorithm
	Scale        float64
	Faults       *faultinject.Plan
	Liveness     livecluster.Liveness
	Admission    admission.Config
	Backpressure int
	SlackGuard   time.Duration
	Degrade      *core.DegradeConfig
	Parallel     int
	StealDepth   int
	FrontierCap  int
	DupCap       int

	// JournalCap bounds each shard's journal (see obs.NewJournal).
	JournalCap int
	// SettleTimeout bounds the wall-clock wait for every task to reach a
	// terminal bucket after the last submission (default 2 minutes); on
	// expiry the run is sealed anyway and Reconcile reports the imbalance.
	SettleTimeout time.Duration

	// BatchCap bounds how many due arrivals the router places per batched
	// routing decision (one view snapshot per batch). Zero means
	// unbounded: everything due at an instant routes against one snapshot.
	BatchCap int
	// ShardAddrs, when non-empty, runs every shard out of process: the
	// router dials one shard server (rtcluster -shard-listen) per address
	// and drives it over the federation wire protocol instead of building
	// in-process clusters. Length must equal Topology.Shards. Fault plans
	// inject into in-process shards only; with ShardAddrs, kill the shard
	// process itself (the chaos suite does exactly that).
	ShardAddrs []string
	// Recovery tunes the shard-death machinery: salvage always runs, and
	// Recovery.Rejoin additionally redials a dead shard's address so a
	// restarted process can re-handshake and serve placements again.
	Recovery Recovery
}

// Recovery configures the shard lifecycle state machine (Up → Suspect →
// Down → Rejoining) the router drives for out-of-process shards.
type Recovery struct {
	// Rejoin enables restart/rejoin: after a session loss the router keeps
	// redialling the shard's address with capped jittered backoff and
	// replays a Rejoin hello when the process comes back. Requires
	// ShardAddrs (an in-process shard has no process to restart).
	Rejoin bool
	// MaxRejoins bounds how many times one shard may rejoin (default 4).
	MaxRejoins int
	// RedialAttempts bounds dials per rejoin (default 8).
	RedialAttempts int
	// RedialBackoff is the first redial delay (default: the liveness
	// RedialBackoff); RedialCap caps the doubling (default 2s).
	RedialBackoff time.Duration
	RedialCap     time.Duration
	// SuspectAfter quarantines a shard from placement when its frames go
	// stale this long without the session dying — reversible, unlike a
	// death (default 3× the liveness heartbeat).
	SuspectAfter time.Duration
	// FlapWindow, FlapThreshold and Probation are the flap hysteresis: a
	// shard dying FlapThreshold times within FlapWindow rejoins on
	// probation — alive and settling its own work, but quarantined from
	// placement for Probation so a flapping shard cannot thrash
	// migrations (defaults 10s / 3 / 2s).
	FlapWindow    time.Duration
	FlapThreshold int
	Probation     time.Duration
}

// withDefaults resolves the recovery knobs against the session's resolved
// liveness settings.
func (r Recovery) withDefaults(live livecluster.Liveness) Recovery {
	if r.MaxRejoins <= 0 {
		r.MaxRejoins = 4
	}
	if r.RedialAttempts <= 0 {
		r.RedialAttempts = 8
	}
	if r.RedialBackoff <= 0 {
		r.RedialBackoff = live.RedialBackoff
	}
	if r.RedialCap <= 0 {
		r.RedialCap = 2 * time.Second
	}
	if r.SuspectAfter <= 0 {
		r.SuspectAfter = 3 * live.HeartbeatEvery
	}
	if r.FlapWindow <= 0 {
		r.FlapWindow = 10 * time.Second
	}
	if r.FlapThreshold <= 0 {
		r.FlapThreshold = 3
	}
	if r.Probation <= 0 {
		r.Probation = 2 * time.Second
	}
	return r
}

// shardHandle is one scheduler shard as the router sees it: in-process
// (localShard) or a remote process behind the wire protocol (remoteShard).
type shardHandle interface {
	// SubmitBatch hands the shard a localized batch in order.
	SubmitBatch(ts []*task.Task) error
	// LoadSummary is the shard's latest load snapshot.
	LoadSummary() livecluster.Summary
	// Counters is the shard's latest registry snapshot (rtsads_* families).
	Counters() map[string]int64
	// SettledTasks counts the shard's tasks whose fate is decided. For a
	// dead remote shard every routed task counts: they are lost, which is
	// a settled fate.
	SettledTasks() int64
	// Seal closes the shard's feed.
	Seal()
	// Wait blocks until the shard's run completes and returns its result.
	Wait() (*metrics.RunResult, error)
	// Journal exports the shard's journal entries and eviction count.
	Journal() ([]obs.Entry, int64)
	// Placeable reports whether the router may place new work here right
	// now. A shard can be alive but not placeable — suspected stale or on
	// flap probation — in which case it keeps settling the work it has
	// while the router quarantines it from new placements.
	Placeable() bool
}

// localShard wraps an in-process cluster and its observer.
type localShard struct {
	cl   *livecluster.Cluster
	o    *obs.Observer
	res  *metrics.RunResult
	err  error
	done chan struct{}
}

// start launches the cluster's run; failed receives the shard index on a
// run error so the router can abort its pump.
func (s *localShard) start(i int, failed chan<- int) {
	go func() {
		s.res, s.err = s.cl.Run()
		if s.err != nil {
			failed <- i
		}
		close(s.done)
	}()
}

func (s *localShard) SubmitBatch(ts []*task.Task) error { return s.cl.SubmitBatch(ts) }
func (s *localShard) Placeable() bool                   { return true }
func (s *localShard) LoadSummary() livecluster.Summary  { return s.cl.LoadSummary() }
func (s *localShard) Counters() map[string]int64        { return s.o.Registry().Snapshot() }
func (s *localShard) Seal()                             { s.cl.Seal() }
func (s *localShard) Journal() ([]obs.Entry, int64)     { return s.o.Journal().Export() }
func (s *localShard) Wait() (*metrics.RunResult, error) {
	<-s.done
	return s.res, s.err
}

func (s *localShard) SettledTasks() int64 {
	return settledFromCounters(s.Counters())
}

// settledFromCounters sums the non-bounce terminal counters of one shard
// registry snapshot.
func settledFromCounters(snap map[string]int64) int64 {
	return snap[obs.MetricHits] + snap[obs.MetricPurged] + snap[obs.MetricMissed] +
		snap[obs.MetricLost] + snap[obs.MetricShed]
}

// Federation runs N live scheduler shards behind one router. Build with
// New, run once with Run; the metrics handler (http.go) can be attached
// any time after New.
type Federation struct {
	cfg Config
	tp  Topology

	obsShards []*obs.Observer
	faults    []*faultinject.Plan
	// journal records the router's own lifecycle spans (route, migrate,
	// route-reject); MergedEntries folds it into the shard journals with
	// the RouterShard tag.
	journal *obs.Journal

	reg         *obs.Registry
	routed      *obs.Counter
	migrated    *obs.Counter
	bounced     *obs.Counter
	rejected    *obs.Counter
	salvaged    *obs.Counter
	salvageLost *obs.Counter
	rejoinsC    *obs.Counter
	quarantines *obs.Counter
	routedBy    []*obs.Counter

	clock   *livecluster.Clock
	shards  []*livecluster.Cluster
	handles []shardHandle

	// mu serialises routing decisions (first placements and migrations)
	// so the Submitted tie-break and the tried sets stay consistent. Lock
	// order: mu before any cluster lock; clusters never call back into the
	// router while holding their own locks.
	mu        sync.Mutex
	submitted []int
	perShard  []int
	// bounces counts each shard's accepted bounces (rejects the router
	// re-placed) — the router-side ground truth a dead remote shard's
	// synthesized books use in place of its stale last counter snapshot.
	bounces   []int
	tried     map[task.ID]map[int]bool
	orig      map[task.ID]*task.Task
	routedN   int
	migratedN int
	bouncedN  int
	rejectedN int
	// salvagedIDs marks tasks the router already re-placed off a dead
	// shard, so the two salvage paths (session-loss recovery and a failed
	// stray submit) can never both place the same task.
	salvagedIDs  map[task.ID]bool
	salvagedN    int
	salvageLostN int
	rejoinsN     int

	// stage and viewBuf are the batched pump's reusable scratch: one
	// staging slice per destination shard and one view snapshot, refilled
	// per routing batch under mu.
	stage   [][]*task.Task
	viewBuf []ShardView
}

// New validates the configuration and builds the federation: per-shard
// observers, the router's own registry, and the split fault plans. The
// shard clusters themselves are created by Run, on a shared clock.
func New(cfg Config) (*Federation, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("federation: Workload is required")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if got, want := cfg.Workload.Params.Workers, cfg.Topology.TotalWorkers(); got != want {
		return nil, fmt.Errorf("federation: workload has %d workers but topology needs %d", got, want)
	}
	switch cfg.Placement {
	case AffinityFirst, LeastCE, Hashed:
	default:
		return nil, fmt.Errorf("federation: unknown placement %v", cfg.Placement)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 20
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("federation: Scale %v must be positive", cfg.Scale)
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 2 * time.Minute
	}
	if cfg.BatchCap < 0 {
		return nil, fmt.Errorf("federation: BatchCap %d must be non-negative", cfg.BatchCap)
	}
	if n := len(cfg.ShardAddrs); n > 0 {
		if n != cfg.Topology.Shards {
			return nil, fmt.Errorf("federation: %d shard addresses for %d shards", n, cfg.Topology.Shards)
		}
		if cfg.Faults != nil && !cfg.Faults.Empty() {
			return nil, fmt.Errorf("federation: fault plans inject into in-process shards; with ShardAddrs kill the shard process instead")
		}
	} else if cfg.Recovery.Rejoin {
		return nil, fmt.Errorf("federation: Recovery.Rejoin needs ShardAddrs; an in-process shard has no process to restart")
	}
	faults, err := SplitFaults(cfg.Faults, cfg.Topology)
	if err != nil {
		return nil, err
	}
	f := &Federation{
		cfg:         cfg,
		tp:          cfg.Topology,
		faults:      faults,
		reg:         obs.NewRegistry(),
		submitted:   make([]int, cfg.Topology.Shards),
		perShard:    make([]int, cfg.Topology.Shards),
		bounces:     make([]int, cfg.Topology.Shards),
		tried:       make(map[task.ID]map[int]bool),
		orig:        make(map[task.ID]*task.Task, len(cfg.Workload.Tasks)),
		salvagedIDs: make(map[task.ID]bool),
		journal:     obs.NewJournal(cfg.JournalCap),
	}
	for _, t := range cfg.Workload.Tasks {
		f.orig[t.ID] = t
	}
	f.routed = f.reg.Counter(MetricRouted)
	f.migrated = f.reg.Counter(MetricMigrated)
	f.bounced = f.reg.Counter(MetricBounced)
	f.rejected = f.reg.Counter(MetricRejected)
	f.salvaged = f.reg.Counter(MetricSalvaged)
	f.salvageLost = f.reg.Counter(MetricSalvageLost)
	f.rejoinsC = f.reg.Counter(MetricRejoins)
	f.quarantines = f.reg.Counter(MetricQuarantines)
	f.reg.Gauge(MetricShards).Set(int64(cfg.Topology.Shards))
	f.routedBy = make([]*obs.Counter, cfg.Topology.Shards)
	f.obsShards = make([]*obs.Observer, cfg.Topology.Shards)
	for i := range f.routedBy {
		f.routedBy[i] = f.reg.Counter(fmt.Sprintf(MetricRoutedShardPattern, i))
		f.obsShards[i] = obs.New(cfg.JournalCap)
	}
	return f, nil
}

// Topology returns the federation's worker partition.
func (f *Federation) Topology() Topology { return f.tp }

// Registry returns the router's own metric registry.
func (f *Federation) Registry() *obs.Registry { return f.reg }

// ShardObserver returns shard i's observer (its registry carries the
// standard rtsads_* families, exposed with a shard label by the handler).
func (f *Federation) ShardObserver(i int) *obs.Observer { return f.obsShards[i] }

// Run executes the workload across the shards: it builds one handle per
// shard on a shared virtual clock (in-process clusters, or wire sessions
// to remote shard processes when ShardAddrs is set), replays the global
// arrival sequence through the router in batched routing decisions, waits
// until every task has reached a terminal bucket, then seals the shards
// and collects their results.
func (f *Federation) Run() (*Result, error) {
	clock, err := livecluster.NewClock(f.cfg.Scale)
	if err != nil {
		return nil, err
	}
	f.clock = clock

	handles := make([]shardHandle, f.tp.Shards)
	f.stage = make([][]*task.Task, f.tp.Shards)
	failed := make(chan int, f.tp.Shards)
	if len(f.cfg.ShardAddrs) > 0 {
		for i, addr := range f.cfg.ShardAddrs {
			rs, err := f.dialShard(i, addr)
			if err != nil {
				for _, h := range handles {
					if h != nil {
						h.Seal()
					}
				}
				return nil, fmt.Errorf("federation: shard %d at %s: %w", i, addr, err)
			}
			handles[i] = rs
		}
	} else {
		f.shards = make([]*livecluster.Cluster, f.tp.Shards)
		for i := range handles {
			i := i
			cl, err := livecluster.New(livecluster.Config{
				Workload:  ShardWorkload(f.cfg.Workload, f.tp, i),
				Algorithm: f.cfg.Algorithm,
				Scale:     f.cfg.Scale,
				Clock:     clock,
				External:  true,
				OnReject: func(t *task.Task, reason admission.Reason, now simtime.Instant) bool {
					return f.onReject(i, t.ID, reason, now)
				},
				Obs:          f.obsShards[i],
				Faults:       f.faults[i],
				Liveness:     f.cfg.Liveness,
				Admission:    f.cfg.Admission,
				Backpressure: f.cfg.Backpressure,
				SlackGuard:   f.cfg.SlackGuard,
				Degrade:      f.cfg.Degrade,
				Parallel:     f.cfg.Parallel,
				StealDepth:   f.cfg.StealDepth,
				FrontierCap:  f.cfg.FrontierCap,
				DupCap:       f.cfg.DupCap,
			})
			if err != nil {
				return nil, fmt.Errorf("federation: shard %d: %w", i, err)
			}
			f.shards[i] = cl
		}
		for i, cl := range f.shards {
			ls := &localShard{cl: cl, o: f.obsShards[i], done: make(chan struct{})}
			ls.start(i, failed)
			handles[i] = ls
		}
	}
	f.mu.Lock()
	f.handles = handles
	f.mu.Unlock()

	// Pump the global arrival sequence through the router in real
	// (scaled) time, routing every batch of due arrivals against one view
	// snapshot.
	pumpErr := f.pump(failed)

	// Wait until every distinct task has reached a non-bounce terminal
	// bucket somewhere — hit, purged, scheduled-missed, lost or shed. A
	// task mid-migration is in no terminal bucket, so sealing here cannot
	// race a bounce. (A dead remote shard counts everything routed to it
	// as settled: lost with the shard.)
	if pumpErr == nil {
		deadline := time.Now().Add(f.cfg.SettleTimeout)
		total := int64(len(f.cfg.Workload.Tasks))
	settle:
		for f.settled() < total {
			select {
			case i := <-failed:
				pumpErr = fmt.Errorf("federation: shard %d failed mid-run", i)
				break settle
			default:
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	for _, h := range f.handles {
		h.Seal()
	}
	results := make([]*metrics.RunResult, f.tp.Shards)
	var errs []error
	for i, h := range f.handles {
		res, err := h.Wait()
		results[i] = res
		if err != nil {
			errs = append(errs, fmt.Errorf("federation: shard %d: %w", i, err))
		}
	}
	if pumpErr != nil {
		return nil, pumpErr
	}
	if len(errs) > 0 {
		return nil, errs[0]
	}

	f.mu.Lock()
	res := &Result{
		Topology:       f.tp,
		Placement:      f.cfg.Placement,
		Shards:         results,
		Routed:         f.routedN,
		Migrated:       f.migratedN,
		Bounced:        f.bouncedN,
		Rejected:       f.rejectedN,
		Salvaged:       f.salvagedN,
		SalvageLost:    f.salvageLostN,
		Rejoins:        f.rejoinsN,
		PerShardRouted: append([]int(nil), f.perShard...),
	}
	f.mu.Unlock()
	return res, nil
}

// pump replays the workload's arrival sequence: it sleeps until the next
// arrival, gathers every task due at the router's clock (bounded by
// BatchCap per routing decision), and routes the batch against a single
// view snapshot — one locked placement pass and one SubmitBatch per
// destination shard, instead of a lock/snapshot/submit cycle per task.
func (f *Federation) pump(failed <-chan int) error {
	tasks := f.cfg.Workload.Tasks
	for i := 0; i < len(tasks); {
		select {
		case s := <-failed:
			return fmt.Errorf("federation: shard %d failed mid-run", s)
		default:
		}
		f.clock.SleepUntil(tasks[i].Arrival)
		now := f.clock.Now()
		j := i + 1
		for j < len(tasks) && !tasks[j].Arrival.After(now) {
			j++
		}
		for i < j {
			n := j - i
			if f.cfg.BatchCap > 0 && n > f.cfg.BatchCap {
				n = f.cfg.BatchCap
			}
			f.routeBatch(tasks[i:i+n], now)
			i += n
		}
	}
	return nil
}

// settled sums each shard's settled-task count — the number of distinct
// tasks whose fate is decided.
func (f *Federation) settled() int64 {
	var sum int64
	for _, h := range f.handles {
		sum += h.SettledTasks()
	}
	return sum
}

// routeBatch places a batch of due arrivals: one view snapshot, one
// placement pass (Submitted updated incrementally so the tie-break sees
// earlier placements in the same batch), one grouped SubmitBatch per
// destination shard. When every shard is dead a task still goes to shard
// 0, whose host loop will bounce it (declined — nowhere to go) and count
// it lost, keeping the books honest.
func (f *Federation) routeBatch(ts []*task.Task, now simtime.Instant) {
	f.mu.Lock()
	views := f.snapshotViewsLocked(now)
	for _, t := range ts {
		f.fillTaskViews(views, t)
		s := f.cfg.Placement.Pick(t, views, nil)
		if s < 0 {
			s = 0
		}
		f.routedN++
		f.perShard[s]++
		f.submitted[s]++
		views[s].Submitted++
		f.routed.Inc()
		f.routedBy[s].Inc()
		f.note(obs.Entry{Type: "route", Task: int(t.ID), Worker: s,
			Detail: fmt.Sprintf("policy=%s", f.cfg.Placement)}, now)
		f.stage[s] = append(f.stage[s], Localize(t, f.tp, s))
	}
	f.mu.Unlock()
	// Submit outside mu: a remote shard's write can block on the network,
	// and reject callbacks re-enter the router lock. Submit cannot fail on
	// a live shard here (shards seal only after the pump and settle
	// complete); a batch a dead remote shard could not take is charged to
	// that shard and then salvaged like its outstanding tasks, so every
	// task still reconciles — rescued on a sibling or explicitly lost.
	for s := range f.stage {
		if len(f.stage[s]) > 0 {
			if err := f.handles[s].SubmitBatch(f.stage[s]); err != nil {
				if rs, ok := f.handles[s].(*remoteShard); ok {
					rs.chargeLost(len(f.stage[s]))
					f.salvageBatch(rs, f.stage[s], now)
				}
			}
			f.stage[s] = f.stage[s][:0]
		}
	}
}

// acceptedBounces returns how many of shard i's rejects the router
// re-placed on a sibling — exact where a dead shard's last counter
// snapshot may trail the truth.
func (f *Federation) acceptedBounces(i int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(f.bounces[i])
}

// onReject is each shard's bounce callback: re-offer a rejected task to
// the best feasible sibling. Returning true transfers ownership (the task
// was submitted to the sibling); false hands it back to the rejecting
// shard to shed or lose locally. Tasks shed for shutdown never get here.
// It is keyed by task ID — the router re-places its own global copy — so
// remote shards can bounce with a 4-byte identifier.
func (f *Federation) onReject(from int, id task.ID, reason admission.Reason, now simtime.Instant) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bouncedN++
	f.bounced.Inc()
	return f.migrateLocked(from, id, string(reason), now)
}

// migrateLocked re-offers one task to the best feasible sibling of shard
// from. Caller holds f.mu and has already counted the bounce. Returns true
// when a sibling accepted the task.
func (f *Federation) migrateLocked(from int, id task.ID, reason string, now simtime.Instant) bool {
	decline := func() bool {
		f.rejectedN++
		f.rejected.Inc()
		f.note(obs.Entry{Type: "route-reject", Task: int(id), Worker: -1,
			Detail: string(reason)}, now)
		return false
	}
	if !f.cfg.Migrate {
		return decline()
	}
	g := f.orig[id]
	if g == nil {
		// A task the router never placed (not ours to migrate).
		return decline()
	}
	tried := f.tried[id]
	if tried == nil {
		tried = make(map[int]bool, f.tp.Shards)
		f.tried[id] = tried
	}
	tried[from] = true
	views := f.viewsLocked(g, now)
	s := f.cfg.Placement.Pick(g, views, func(i int) bool {
		return i != from && !tried[i] && views[i].Feasible(g, now)
	})
	if s < 0 {
		return decline()
	}
	if err := f.handles[s].SubmitBatch([]*task.Task{Localize(g, f.tp, s)}); err != nil {
		return decline()
	}
	tried[s] = true
	f.submitted[s]++
	f.bounces[from]++
	f.migratedN++
	f.migrated.Inc()
	if rs, ok := f.handles[from].(*remoteShard); ok {
		// The sibling owns the task now; the dead-shard salvage ledger
		// must not offer it again.
		rs.forget(id)
	}
	// The migrate span re-states the §4.3 verdict the sibling passed:
	// RQs + se_lk against the slack left at this instant.
	f.note(obs.Entry{Type: "migrate", Task: int(id), Worker: s,
		Detail: fmt.Sprintf("from shard %d, reason %s: RQs=%s comm=%s slack=%s",
			from, reason, views[s].RQs, views[s].Comm, g.Deadline.Sub(now))}, now)
	return true
}

// salvageLocked re-routes one task off dead shard s through the same §4.3
// migration gate a live bounce takes: it is charged as a bounce from s,
// and either a feasible sibling accepts it (a salvage — counted as a
// migration, so Reconcile's bounce identities hold unchanged) or no
// sibling can make its deadline and it is explicitly rejected (salvage
// lost — the shard's books then charge it lost). Caller holds f.mu.
func (f *Federation) salvageLocked(s *remoteShard, id task.ID, reason string, now simtime.Instant) bool {
	f.bouncedN++
	f.bounced.Inc()
	if f.migrateLocked(s.id, id, reason, now) {
		f.salvagedN++
		f.salvaged.Inc()
		f.salvagedIDs[id] = true
		return true
	}
	f.salvageLostN++
	f.salvageLost.Inc()
	return false
}

// recoverShard is the session-loss entry point: it walks the dead
// session's outstanding ledger (submitted minus verdicted, per the last
// applied checkpoint) in task order, salvages every task a sibling can
// still finish by its deadline, then folds the session's books so the
// shard can rejoin with a clean per-session ledger. Runs on the recovery
// goroutine; takes f.mu.
func (f *Federation) recoverShard(s *remoteShard) {
	now := f.clock.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.handles != nil {
		ids := s.outstandingIDs()
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			// A concurrent failed-submit salvage (salvageBatch) or an
			// in-flight verdict may have settled the ID between the
			// snapshot and here; skip anything no longer ours to place.
			if !s.stillOutstanding(id) || f.salvagedIDs[id] {
				continue
			}
			f.salvageLocked(s, id, "shard-death", now)
		}
	}
	s.fold(int64(f.bounces[s.id]))
}

// salvageBatch handles a first placement that failed because the shard
// died mid-submit: the batch never reached the shard, so each task is
// salvaged like an outstanding task and the stray charge is folded
// straight into the shard's carried books (these tasks post-date the
// death-time fold).
func (f *Federation) salvageBatch(rs *remoteShard, ts []*task.Task, now simtime.Instant) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, t := range ts {
		if f.salvagedIDs[t.ID] {
			continue
		}
		ok := f.salvageLocked(rs, t.ID, "submit-failed", now)
		rs.foldStray(ok)
	}
}

// noteRejoin records a completed rejoin handshake.
func (f *Federation) noteRejoin(shard int) {
	f.rejoinsC.Inc()
	f.mu.Lock()
	f.rejoinsN++
	f.mu.Unlock()
	f.note(obs.Entry{Type: "rejoin", Task: -1, Worker: shard}, f.clock.Now())
}

// noteQuarantine counts a placeable→quarantined edge. Called with f.mu
// held (from the placement snapshot), so it must only touch the counter.
func (f *Federation) noteQuarantine() {
	f.quarantines.Inc()
}

// note stamps and records one router-journal entry.
func (f *Federation) note(e obs.Entry, at simtime.Instant) {
	e.Wall = time.Now()
	e.Virtual = at
	f.journal.Record(e)
}

// MergedEntries merges the router journal and every shard journal into one
// record-ordered stream on the shared clock, each entry tagged with its
// source (obs.RouterShard for the router). The second return is the summed
// eviction count, so callers can tell a complete lifecycle view from a
// truncated one.
func (f *Federation) MergedEntries() ([]obs.Entry, int64) {
	f.mu.Lock()
	handles := f.handles
	f.mu.Unlock()
	sources := make(map[int][]obs.Entry, f.tp.Shards+1)
	entries, evicted := f.journal.Export()
	sources[obs.RouterShard] = entries
	for i := 0; i < f.tp.Shards; i++ {
		var se []obs.Entry
		var sev int64
		if handles != nil && handles[i] != nil {
			se, sev = handles[i].Journal()
		} else {
			se, sev = f.obsShards[i].Journal().Export()
		}
		sources[i] = se
		evicted += sev
	}
	return obs.MergeEntries(sources), evicted
}

// ShardCounters returns shard i's latest registry snapshot — the local
// observer's registry in process, or the last wire Summary from a remote
// shard. Nil before Run has built the shard handles.
func (f *Federation) ShardCounters(i int) map[string]int64 {
	f.mu.Lock()
	handles := f.handles
	f.mu.Unlock()
	if handles == nil || handles[i] == nil {
		return f.obsShards[i].Registry().Snapshot()
	}
	return handles[i].Counters()
}

// snapshotViewsLocked fills the reusable view buffer with every shard's
// task-independent fields: load summary projection plus the running
// Submitted tie-break count. Caller holds f.mu; the returned slice is
// valid until the next call.
func (f *Federation) snapshotViewsLocked(now simtime.Instant) []ShardView {
	if cap(f.viewBuf) < f.tp.Shards {
		f.viewBuf = make([]ShardView, f.tp.Shards)
	}
	views := f.viewBuf[:f.tp.Shards]
	for i := range views {
		sum := f.handles[i].LoadSummary()
		rqs := time.Duration(1) << 56 // no alive worker: beyond any deadline
		if sum.MinFree != simtime.Never {
			rqs = simtime.NonNeg(sum.MinFree.Sub(now))
		}
		views[i] = ShardView{
			Alive:       sum.Alive,
			Sealed:      sum.Sealed,
			Quarantined: !f.handles[i].Placeable(),
			RQs:         rqs,
			QueuedWork:  sum.QueuedWork,
			Submitted:   f.submitted[i],
		}
	}
	return views
}

// fillTaskViews projects one task onto an existing snapshot.
func (f *Federation) fillTaskViews(views []ShardView, t *task.Task) {
	for i := range views {
		ov := f.tp.Overlap(t, i)
		views[i].Overlap = ov
		if ov == 0 {
			views[i].Comm = f.cfg.Workload.Cost.Remote
		} else {
			views[i].Comm = 0
		}
	}
}

// viewsLocked projects every shard's load summary onto one task. Caller
// holds f.mu.
func (f *Federation) viewsLocked(t *task.Task, now simtime.Instant) []ShardView {
	views := f.snapshotViewsLocked(now)
	f.fillTaskViews(views, t)
	return views
}
