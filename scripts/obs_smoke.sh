#!/usr/bin/env bash
# Observability smoke test: start a live rtcluster run under a kill/drop
# fault spec with the debug endpoint on, curl /metrics and /healthz while
# the run is in flight, and assert the failure counters are exposed and
# non-zero mid-run. After the run exits, check the Chrome trace it wrote
# is valid JSON containing the worker-down and reroute instants, and that
# the final counters match the printed RunResult.
#
# Run from the repository root: ./scripts/obs_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:8077"
WORKDIR="$(mktemp -d)"
OUT="$WORKDIR/stdout.log"
TRACE="$WORKDIR/out.json"
JOURNAL="$WORKDIR/run.jsonl"
trap 'kill "$RUN_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

fail() { echo "obs_smoke: FAIL: $*" >&2; exit 1; }

metric() { # metric <name> — print the metric's current value, default 0
    # The endpoint may not be bound yet on the first poll; under pipefail a
    # refused connection must read as "0", not kill the script.
    { curl -sf "http://$ADDR/metrics" 2>/dev/null || true; } |
        awk -v m="$1" '$1 == m { print $2; found=1 } END { if (!found) print 0 }'
}

echo "obs_smoke: building rtcluster"
go build -o "$WORKDIR/rtcluster" ./cmd/rtcluster

# Slow clock (scale 300) so the run stays in flight long enough to be
# observed; kill worker 1 early (1ms virtual = 0.3s wall) and drop two
# deliveries to worker 0 so the straggler path runs too.
echo "obs_smoke: starting faulted live run on $ADDR"
"$WORKDIR/rtcluster" -workers 4 -txns 200 -scale 300 -sf 4 \
    -faults "kill=1@1ms;drop=0:2@2ms" \
    -debug-addr "$ADDR" -trace "$TRACE" -journal "$JOURNAL" \
    >"$OUT" 2>&1 &
RUN_PID=$!

# Wait for the endpoint, then for the injected failure to surface in the
# live counters. The kill lands ~0.3s in; give the whole probe 60s.
deadline=$((SECONDS + 60))
failures=0 rerouted=0
while [ "$SECONDS" -lt "$deadline" ]; do
    if ! kill -0 "$RUN_PID" 2>/dev/null; then
        cat "$OUT" >&2
        fail "run exited before the fault was observed mid-run"
    fi
    failures=$(metric rtsads_worker_failures_total)
    rerouted=$(metric rtsads_task_rerouted_total)
    if [ "$failures" -ge 1 ] && [ "$rerouted" -ge 1 ]; then
        break
    fi
    sleep 0.2
done
[ "$failures" -ge 1 ] || fail "rtsads_worker_failures_total = $failures mid-run, want >= 1"
[ "$rerouted" -ge 1 ] || fail "rtsads_task_rerouted_total = $rerouted mid-run, want >= 1"
echo "obs_smoke: mid-run /metrics shows failures=$failures rerouted=$rerouted"

HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "obs_smoke: mid-run /healthz: $HEALTH"
echo "$HEALTH" | grep -q '"status":"degraded"' || fail "/healthz not degraded after a kill: $HEALTH"
echo "$HEALTH" | grep -q '"worker":1,"alive":false' || fail "/healthz does not show worker 1 dead: $HEALTH"

curl -sf "http://$ADDR/debug/vars" | grep -q '"rtsads"' || fail "/debug/vars missing rtsads expvar"
curl -sf "http://$ADDR/debug/pprof/cmdline" >/dev/null || fail "/debug/pprof not serving"

echo "obs_smoke: waiting for the run to finish"
wait "$RUN_PID" || { cat "$OUT" >&2; fail "run exited non-zero"; }
cat "$OUT"

grep -q "faults: 1 worker(s) failed" "$OUT" || fail "RunResult does not report the worker failure"

python3 - "$TRACE" "$JOURNAL" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
names = [e.get("name", "") for e in events]
assert any(n.startswith("phase ") for n in names), "trace has no host phase spans"
assert any(n.startswith("task ") for n in names), "trace has no execution spans"
assert any("down" in n for n in names), "trace has no worker-down instant"
assert any(n.startswith("reroute") for n in names), "trace has no reroute instant"
for line in open(sys.argv[2]):
    json.loads(line)  # every journal line must be valid JSON
print("obs_smoke: trace has %d events; journal is valid JSONL" % len(events))
PY

echo "obs_smoke: PASS"
