package admission

import (
	"testing"
	"time"

	"rtsads/internal/simtime"
	"rtsads/internal/task"
)

// tk builds a task with the given id, arrival, processing cost and deadline.
func tk(id task.ID, arrival simtime.Instant, proc, ttl time.Duration) *task.Task {
	return &task.Task{ID: id, Arrival: arrival, Proc: proc, Deadline: arrival.Add(ttl)}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Reject, ShedOldest, ShedLeastSlack} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("drop-all"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{QueueCap: -1}).Validate(); err == nil {
		t.Error("negative QueueCap accepted")
	}
	if err := (Config{MinComm: -time.Millisecond}).Validate(); err == nil {
		t.Error("negative MinComm accepted")
	}
	if err := (Config{Policy: Policy(99)}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(Config{QueueCap: -1}); err == nil {
		t.Error("New accepted an invalid config")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{QueueCap: 1}).Enabled() || !(Config{RejectHopeless: true}).Enabled() {
		t.Error("non-zero config reports disabled")
	}
}

// A hopeless task — deadline closer than its own processing time — must be
// rejected at the door, and only when the feasibility test is enabled.
func TestHopelessRejection(t *testing.T) {
	now := simtime.Instant(0)
	hopeless := tk(1, now, 10*time.Millisecond, 5*time.Millisecond)
	fine := tk(2, now, 10*time.Millisecond, 50*time.Millisecond)
	exact := tk(3, now, 10*time.Millisecond, 10*time.Millisecond)

	c := mustNew(t, Config{RejectHopeless: true})
	if d := c.Admit(hopeless, now, nil); d.Admit || d.Reason != Hopeless {
		t.Errorf("hopeless task: got %+v, want rejection with Hopeless", d)
	}
	if d := c.Admit(fine, now, nil); !d.Admit {
		t.Errorf("feasible task rejected: %+v", d)
	}
	// now + p == d is still feasible — the bound is strict After.
	if d := c.Admit(exact, now, nil); !d.Admit {
		t.Errorf("exactly-feasible task rejected: %+v", d)
	}

	off := mustNew(t, Config{})
	if d := off.Admit(hopeless, now, nil); !d.Admit {
		t.Errorf("hopeless test fired while disabled: %+v", d)
	}
}

// MinComm tightens the hopeless bound: a task feasible with free
// communication becomes hopeless when every placement pays a transfer.
func TestHopelessMinComm(t *testing.T) {
	now := simtime.Instant(0)
	t1 := tk(1, now, 10*time.Millisecond, 12*time.Millisecond)
	free := mustNew(t, Config{RejectHopeless: true})
	paid := mustNew(t, Config{RejectHopeless: true, MinComm: 5 * time.Millisecond})
	if free.HopelessAt(t1, now) {
		t.Error("task hopeless with zero MinComm")
	}
	if !paid.HopelessAt(t1, now) {
		t.Error("task not hopeless with MinComm 5ms")
	}
}

func TestRejectPolicyAtCap(t *testing.T) {
	now := simtime.Instant(0)
	queue := []*task.Task{
		tk(1, 0, time.Millisecond, 100*time.Millisecond),
		tk(2, 0, time.Millisecond, 100*time.Millisecond),
	}
	c := mustNew(t, Config{Policy: Reject, QueueCap: 2})
	d := c.Admit(tk(3, now, time.Millisecond, 100*time.Millisecond), now, queue)
	if d.Admit || d.Reason != QueueFull || d.Victim != nil {
		t.Errorf("reject policy at cap: got %+v, want QueueFull rejection", d)
	}
	// Below cap everything is admitted.
	d = c.Admit(tk(4, now, time.Millisecond, 100*time.Millisecond), now, queue[:1])
	if !d.Admit || d.Victim != nil {
		t.Errorf("below cap: got %+v, want plain admit", d)
	}
}

func TestShedOldestEvictsEarliestArrival(t *testing.T) {
	now := simtime.Instant(30 * int64(time.Millisecond))
	old := tk(5, simtime.Instant(1*int64(time.Millisecond)), time.Millisecond, 200*time.Millisecond)
	newer := tk(4, simtime.Instant(20*int64(time.Millisecond)), time.Millisecond, 200*time.Millisecond)
	queue := []*task.Task{newer, old}
	c := mustNew(t, Config{Policy: ShedOldest, QueueCap: 2})
	d := c.Admit(tk(9, now, time.Millisecond, 200*time.Millisecond), now, queue)
	if !d.Admit || d.Victim != old {
		t.Errorf("shed-oldest: got %+v, want victim %v", d, old.ID)
	}
}

func TestShedOldestTieBreaksByID(t *testing.T) {
	now := simtime.Instant(0)
	a := tk(7, 0, time.Millisecond, 100*time.Millisecond)
	b := tk(3, 0, time.Millisecond, 100*time.Millisecond)
	c := mustNew(t, Config{Policy: ShedOldest, QueueCap: 2})
	d := c.Admit(tk(9, now, time.Millisecond, 100*time.Millisecond), now, []*task.Task{a, b})
	if !d.Admit || d.Victim != b {
		t.Errorf("tie: got victim %+v, want ID 3", d.Victim)
	}
}

// shed-least-slack evicts the queued deadline-loser when the arriving task
// has more slack, and rejects the arrival when it is itself the worst.
func TestShedLeastSlack(t *testing.T) {
	now := simtime.Instant(0)
	tight := tk(1, 0, time.Millisecond, 5*time.Millisecond)   // slack 4ms
	loose := tk(2, 0, time.Millisecond, 100*time.Millisecond) // slack 99ms
	queue := []*task.Task{loose, tight}
	c := mustNew(t, Config{Policy: ShedLeastSlack, QueueCap: 2})

	arriving := tk(3, 0, time.Millisecond, 50*time.Millisecond) // slack 49ms
	d := c.Admit(arriving, now, queue)
	if !d.Admit || d.Victim != tight {
		t.Errorf("arriving has more slack: got %+v, want victim %v", d, tight.ID)
	}

	worst := tk(4, 0, time.Millisecond, 2*time.Millisecond) // slack 1ms < everyone
	d = c.Admit(worst, now, queue)
	if d.Admit || d.Reason != QueueFull {
		t.Errorf("arriving is worst: got %+v, want QueueFull rejection", d)
	}
}

// Equal slack between victim candidate and arrival: the queued task wins
// eviction only on lower ID, otherwise the arrival is rejected — either way
// exactly one task is shed and the decision is deterministic.
func TestShedLeastSlackEqualSlack(t *testing.T) {
	now := simtime.Instant(0)
	queued := tk(2, 0, time.Millisecond, 10*time.Millisecond)
	c := mustNew(t, Config{Policy: ShedLeastSlack, QueueCap: 1})

	higher := tk(9, 0, time.Millisecond, 10*time.Millisecond) // same slack, higher ID
	if d := c.Admit(higher, now, []*task.Task{queued}); !d.Admit || d.Victim != queued {
		t.Errorf("equal slack, queued has lower ID: got %+v, want evict queued", d)
	}
	lower := tk(1, 0, time.Millisecond, 10*time.Millisecond) // same slack, lower ID
	if d := c.Admit(lower, now, []*task.Task{queued}); d.Admit {
		t.Errorf("equal slack, arrival has lower ID: got %+v, want reject arrival", d)
	}
}

// A nil controller and a zero-cap shed policy must both admit everything —
// the opt-out paths existing callers rely on.
func TestDisabledPaths(t *testing.T) {
	now := simtime.Instant(0)
	t1 := tk(1, now, time.Hour, time.Millisecond) // wildly hopeless
	var nilC *Controller
	if d := nilC.Admit(t1, now, nil); !d.Admit {
		t.Errorf("nil controller rejected: %+v", d)
	}
	c := mustNew(t, Config{Policy: ShedLeastSlack})
	big := make([]*task.Task, 100)
	for i := range big {
		big[i] = tk(task.ID(i+10), 0, time.Millisecond, 100*time.Millisecond)
	}
	if d := c.Admit(tk(1, now, time.Millisecond, 100*time.Millisecond), now, big); !d.Admit || d.Victim != nil {
		t.Errorf("zero cap sheds: %+v", d)
	}
}

// Determinism: the same inputs always yield the same decision.
func TestAdmitDeterministic(t *testing.T) {
	now := simtime.Instant(0)
	queue := []*task.Task{
		tk(1, 0, time.Millisecond, 7*time.Millisecond),
		tk(2, 0, time.Millisecond, 9*time.Millisecond),
		tk(3, 0, time.Millisecond, 5*time.Millisecond),
	}
	c := mustNew(t, Config{Policy: ShedLeastSlack, QueueCap: 3})
	arr := tk(4, 0, time.Millisecond, 8*time.Millisecond)
	first := c.Admit(arr, now, queue)
	for i := 0; i < 50; i++ {
		if got := c.Admit(arr, now, queue); got != first {
			t.Fatalf("iteration %d: decision %+v differs from first %+v", i, got, first)
		}
	}
}
