// Package queue provides the small container types shared by the event
// engine, the worker ready queues and the schedulers' candidate lists: a
// generic binary min-heap and a growable FIFO ring buffer.
package queue

// Heap is a binary min-heap ordered by the less function supplied at
// construction. It is not safe for concurrent use.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of items in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Grow reserves capacity for n additional items, so a burst of Push calls
// (a search expansion, an event fan-out) reallocates at most once.
func (h *Heap[T]) Grow(n int) {
	if n <= 0 || cap(h.items)-len(h.items) >= n {
		return
	}
	items := make([]T, len(h.items), len(h.items)+n)
	copy(items, h.items)
	h.items = items
}

// Push adds v to the heap.
func (h *Heap[T]) Push(v T) {
	h.items = append(h.items, v)
	h.up(len(h.items) - 1)
}

// Peek returns the minimum element without removing it. The second result
// is false when the heap is empty.
func (h *Heap[T]) Peek() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	return h.items[0], true
}

// Pop removes and returns the minimum element. The second result is false
// when the heap is empty.
func (h *Heap[T]) Pop() (T, bool) {
	if len(h.items) == 0 {
		var zero T
		return zero, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release reference for GC
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// Reset empties the heap while keeping its backing storage.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
