// Package represent provides the two task-space representations the paper
// compares: the assignment-oriented representation used by RT-SADS (§3,
// Figure 2) and the sequence-oriented representation used by D-COLS (§3,
// Figure 1). Both plug into the generic quantum-bounded search engine in
// package search; they differ only in the topology of the task space and
// therefore in what backtracking can undo — the paper's central variable.
//
// Both representations speak the engine's delta-vertex API: successors
// carry only their one changed (proc, endOffset) pair, read the path's
// loads from the engine's PathState scratch, and derive CE incrementally
// through a search.CostModel. Vertices and successor slices come from the
// engine's pools, so an expansion allocates nothing in steady state.
package represent

import (
	"rtsads/internal/search"
	"rtsads/internal/task"
)

// Assignment is the assignment-oriented representation: at each tree level
// the next task (in the batch's priority order) is selected, and the
// branches decide which processor it is assigned to. All processors are
// candidates at every level, so backtracking can re-route any task to any
// processor and greedy load balancing across the whole machine is possible.
type Assignment struct {
	// SkipInfeasible makes a level fall through to the next task when the
	// current task has no feasible processor, leaving the task for the next
	// batch instead of dead-ending the branch. This is the behaviour
	// RT-SADS's batch semantics imply (unscheduled tasks merge into
	// Batch(j+1)); disable it only for ablations.
	SkipInfeasible bool
	// Breadth caps the number of successors kept per expansion (0 = keep
	// every feasible processor).
	Breadth int
	// Cost overrides the partial-schedule cost model; nil uses the paper's
	// §4.4 load-balancing cost CE = max_k ce_k (search.MaxCost).
	Cost search.CostModel
}

// NewAssignment returns the representation with the paper's behaviour.
func NewAssignment() *Assignment {
	return &Assignment{SkipInfeasible: true}
}

// Name implements search.Representation.
func (a *Assignment) Name() string { return "assignment-oriented" }

// cost returns the configured cost model (default: §4.4's max).
func (a *Assignment) cost() search.CostModel {
	if a.Cost != nil {
		return a.Cost
	}
	return search.MaxCost{}
}

// Root implements search.Representation. The root is the empty schedule:
// worker completion offsets start at max(0, Load_k(j-1) - Qs(j)) (§4.4).
func (a *Assignment) Root(p *search.Problem) *search.Vertex {
	return search.NewRoot(p, a.cost())
}

// IsLeaf implements search.Representation: every batch task has been
// considered (assigned or skipped).
func (a *Assignment) IsLeaf(p *search.Problem, v *search.Vertex) bool {
	return v.Cursor >= len(p.Tasks)
}

// Expand implements search.Representation. It finds the first task at or
// after the vertex's cursor with at least one feasible processor and
// returns one successor per feasible processor, ordered by the cost
// function (smallest resulting CE, then earliest completion).
//
// Quantum charging: probing a task's processors generates Workers
// candidate vertices, feasible or not. A task that is hopeless on every
// processor regardless of load (PhaseEnd + p_l > d_l) is rejected with a
// single comparison before any processor is probed, and charges one
// generated vertex — not Workers.
func (a *Assignment) Expand(p *search.Problem, v *search.Vertex, st *search.PathState) ([]*search.Vertex, int) {
	generated := 0
	model := a.cost()
	succs := search.GetSuccs()
	for i := v.Cursor; i < len(p.Tasks); i++ {
		t := p.Tasks[i]
		if p.Hopeless(t) {
			generated++
			if !a.SkipInfeasible {
				break
			}
			continue
		}
		succs = appendTaskSuccessors(p, v, st, t, i, model, succs)
		generated += p.Workers
		if len(succs) > 0 {
			sortSuccessors(succs)
			if a.Breadth > 0 && len(succs) > a.Breadth {
				for _, pruned := range succs[a.Breadth:] {
					search.FreeVertex(pruned)
				}
				succs = succs[:a.Breadth]
			}
			return succs, generated
		}
		if !a.SkipInfeasible {
			break
		}
	}
	search.PutSuccs(succs)
	return nil, generated
}

// appendTaskSuccessors appends v's feasible successors that assign t
// (batch index ti) to succs, stamping each with cursor ti+1.
func appendTaskSuccessors(p *search.Problem, v *search.Vertex, st *search.PathState,
	t *task.Task, ti int, model search.CostModel, succs []*search.Vertex) []*search.Vertex {
	for k := 0; k < p.Workers; k++ {
		comm := p.Comm(t, k)
		end, ok := p.Feasible(t, st.Loads[k], comm)
		if !ok {
			continue
		}
		sv := search.NewVertex()
		sv.Parent = v
		sv.Assign = search.Assignment{Task: t, TaskIndex: ti, Proc: k, Comm: comm, EndOffset: end}
		sv.IsAssignment = true
		sv.Depth = v.Depth + 1
		sv.Cursor = ti + 1
		sv.CE = model.Extend(v.CE, st.Loads[k], end)
		succs = append(succs, sv)
	}
	return succs
}

// sortSuccessors orders sibling vertices best-first: by the load-balancing
// cost CE, then by the assigned task's completion offset (which prefers
// affine processors, since they avoid the communication cost), then by
// processor index for determinism. Sibling sets are small (at most the
// machine size), so a closure-free insertion sort beats sort.Slice's
// interface dispatch on the hot path.
func sortSuccessors(succs []*search.Vertex) {
	for i := 1; i < len(succs); i++ {
		v := succs[i]
		j := i - 1
		for j >= 0 && lessVertex(v, succs[j]) {
			succs[j+1] = succs[j]
			j--
		}
		succs[j+1] = v
	}
}

// lessVertex is sortSuccessors' ordering predicate.
func lessVertex(a, b *search.Vertex) bool {
	if a.CE != b.CE {
		return a.CE < b.CE
	}
	if a.Assign.EndOffset != b.Assign.EndOffset {
		return a.Assign.EndOffset < b.Assign.EndOffset
	}
	return a.Assign.Proc < b.Assign.Proc
}
