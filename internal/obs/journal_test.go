package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJournalRecordAndSnapshot(t *testing.T) {
	j := NewJournal(8)
	j.Record(Entry{Type: "arrival", Task: 1, Worker: -1})
	j.Record(Entry{Type: "exec", Task: 1, Worker: 2})
	if j.Len() != 2 {
		t.Fatalf("Len = %d", j.Len())
	}
	snap := j.Snapshot()
	if snap[0].Type != "arrival" || snap[1].Type != "exec" {
		t.Errorf("snapshot order wrong: %+v", snap)
	}
	if snap[0].Seq != 1 || snap[1].Seq != 2 {
		t.Errorf("sequence numbers wrong: %d, %d", snap[0].Seq, snap[1].Seq)
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record(Entry{Type: "arrival", Task: i, Worker: -1})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Evicted() != 6 {
		t.Errorf("Evicted = %d, want 6", j.Evicted())
	}
	snap := j.Snapshot()
	// The survivors are the most recent four, oldest first.
	for i, e := range snap {
		if e.Task != 6+i {
			t.Errorf("snapshot[%d].Task = %d, want %d", i, e.Task, 6+i)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record(Entry{Type: "x"})
	if j.Len() != 0 || j.Evicted() != 0 || j.Snapshot() != nil {
		t.Error("nil journal not inert")
	}
	if err := j.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil journal write: %v", err)
	}
}

func TestJournalWriteJSONL(t *testing.T) {
	j := NewJournal(2)
	j.Record(Entry{Type: "arrival", Task: 1, Worker: -1})
	j.Record(Entry{Type: "exec", Task: 1, Worker: 0, Hit: true})
	j.Record(Entry{Type: "purge", Task: 2, Worker: -1}) // evicts the arrival

	var b strings.Builder
	if err := j.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3 (truncation meta + 2 entries)", len(lines))
	}
	if lines[0]["type"] != "journal-truncated" || lines[0]["evicted"].(float64) != 1 {
		t.Errorf("missing truncation meta line: %v", lines[0])
	}
	if lines[1]["type"] != "exec" || lines[2]["type"] != "purge" {
		t.Errorf("entries wrong: %v", lines)
	}
}

// TestJournalExportConsistentUnderBurst is the regression test for the
// drop-accounting race: WriteJSONL used to take the snapshot and read the
// eviction counter under separate lock acquisitions, so a burst of writes
// between the two could report drops for entries that were still present in
// the snapshot. Export must return a pair where the eviction count is
// exactly the sequence numbers missing before the first retained entry.
func TestJournalExportConsistentUnderBurst(t *testing.T) {
	j := NewJournal(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
					j.Record(Entry{Type: "exec", Task: k})
				}
			}
		}()
	}
	for reads := 0; reads < 200; reads++ {
		entries, evicted := j.Export()
		for i, e := range entries {
			if want := evicted + int64(i) + 1; e.Seq != want {
				t.Fatalf("read %d: entry %d has seq %d, want %d (evicted=%d): snapshot and drop count are inconsistent",
					reads, i, e.Seq, want, evicted)
			}
		}
		var b strings.Builder
		if err := j.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// A final quiescent export must also reconcile with the total recorded.
	entries, evicted := j.Export()
	if int64(len(entries))+evicted != j.Evicted()+int64(j.Len()) {
		t.Errorf("export disagrees with accessors: %d+%d vs %d+%d",
			len(entries), evicted, j.Len(), j.Evicted())
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				j.Record(Entry{Type: "exec", Task: k})
			}
		}()
	}
	wg.Wait()
	if got := int64(j.Len()) + j.Evicted(); got != 800 {
		t.Errorf("retained+evicted = %d, want 800", got)
	}
	snap := j.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not in record order at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}
