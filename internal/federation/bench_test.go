package federation

import (
	"fmt"
	"testing"

	"rtsads/internal/federation/wire"
	"rtsads/internal/task"
	"rtsads/internal/workload"
)

// BenchmarkFederationThroughput measures federated scheduling throughput —
// tasks admitted and driven to a terminal outcome per second of wall time —
// under the paper's §5.1 workload at a fixed total worker count, across
// three dimensions: shard count (does routing scale), batch size (batch=all
// is the amortized pipeline, batch=1 degenerates to per-task submission),
// and transport (wire=loopback detours every router→shard batch through the
// binary submit codec over a real TCP connection, pricing the protocol).
// The deterministic simulation (Simulate) is the engine, so the measurement
// isolates scheduling work (routing, per-shard search, migration
// bookkeeping) from virtual-clock sleeping.
//
// scripts/bench_cluster.sh runs this suite and writes BENCH_cluster.json;
// the committed copy at the repo root is the baseline CI gates against
// (gate: shards=4/batch=all on tasks/s and an absolute allocs/op cap).
func BenchmarkFederationThroughput(b *testing.B) {
	const totalWorkers = 8
	w, err := workload.Generate(workload.DefaultParams(totalWorkers))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg SimConfig) {
		b.Helper()
		b.ReportAllocs()
		settled := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Simulate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			c := res.Combined()
			settled += c.Hits + c.Purged + c.ScheduledMissed + c.LostToFailure + c.Shed
		}
		b.StopTimer()
		b.ReportMetric(float64(settled)/b.Elapsed().Seconds(), "tasks/s")
	}
	for _, shards := range []int{1, 2, 4} {
		tp, err := SplitWorkers(totalWorkers, shards)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range []struct {
			name string
			cap  int
		}{{"all", 0}, {"1", 1}} {
			b.Run(fmt.Sprintf("shards=%d/batch=%s", shards, batch.name), func(b *testing.B) {
				run(b, SimConfig{
					Workload:  w,
					Topology:  tp,
					Placement: AffinityFirst,
					Migrate:   true,
					BatchCap:  batch.cap,
				})
			})
		}
	}
	b.Run("shards=4/wire=loopback", func(b *testing.B) {
		tp, err := SplitWorkers(totalWorkers, 4)
		if err != nil {
			b.Fatal(err)
		}
		client, server := tcpLoopback(b)
		go func() {
			for {
				typ, body, err := server.ReadFrame()
				if err != nil {
					return
				}
				_ = server.WriteFrame(typ, body)
			}
		}()
		var buf []byte
		run(b, SimConfig{
			Workload:  w,
			Topology:  tp,
			Placement: AffinityFirst,
			Migrate:   true,
			Transport: func(shard int, batch []*task.Task) []*task.Task {
				buf = wire.AppendSubmit(buf[:0], batch)
				if err := client.WriteFrame(wire.TypeSubmit, buf); err != nil {
					b.Fatalf("write submit: %v", err)
				}
				_, body, err := client.ReadFrame()
				if err != nil {
					b.Fatalf("read echo: %v", err)
				}
				out, err := wire.DecodeSubmit(body, func() *task.Task { return new(task.Task) })
				if err != nil {
					b.Fatalf("decode submit: %v", err)
				}
				return out
			},
		})
		client.Close()
	})
}
