package workload_test

import (
	"fmt"

	"rtsads/internal/workload"
)

// Example generates the paper's §5.1 workload and inspects its shape.
func Example() {
	params := workload.DefaultParams(10) // 10 working processors
	w, err := workload.Generate(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("transactions: %d\n", len(w.Tasks))
	fmt.Printf("sub-databases: %d\n", len(w.Placement))

	// Every task's deadline is SF × 10 × its estimated cost.
	t := w.Tasks[0]
	fmt.Printf("deadline/cost ratio: %d\n", t.Deadline.Sub(t.Arrival)/t.Proc)
	// Output:
	// transactions: 1000
	// sub-databases: 10
	// deadline/cost ratio: 10
}
