// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json format tracked by the repo: one entry per benchmark, with
// ns/op, B/op, allocs/op and any custom metrics (tasks/s). With -count > 1
// the best run wins (min for costs, max for throughput), which damps
// scheduler noise in CI.
//
// -suite names the tracked suite (the top-level Benchmark function); it is
// recorded in the output and stripped from sub-benchmark names, so entries
// read "expand-only" or "shards=4" rather than the full Go benchmark path.
//
// Usage: go test -bench BenchmarkSearchCore -benchmem ./internal/search/ | go run ./scripts/benchjson
//
//	go test -bench BenchmarkFederationThroughput ./internal/federation/ | go run ./scripts/benchjson -suite BenchmarkFederationThroughput
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// File is the BENCH_search.json schema (shared with scripts/benchcmp).
type File struct {
	Suite      string                        `json:"suite"`
	GOOS       string                        `json:"goos,omitempty"`
	GOARCH     string                        `json:"goarch,omitempty"`
	CPU        string                        `json:"cpu,omitempty"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func metricKey(unit string) string {
	return strings.ReplaceAll(strings.ReplaceAll(unit, "/", "_per_"), "-", "_")
}

// betterIsMax reports whether larger values of the metric are better
// (throughput); cost metrics keep the minimum across -count runs.
func betterIsMax(key string) bool {
	return strings.HasSuffix(key, "_per_s") || strings.HasSuffix(key, "_per_sec")
}

func main() {
	suite := flag.String("suite", "BenchmarkSearchCore", "tracked suite: the top-level Benchmark function name")
	flag.Parse()
	out := File{Suite: *suite, Benchmarks: map[string]map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], *suite+"/")
		name = strings.TrimPrefix(name, "Benchmark")
		// Strip the trailing -GOMAXPROCS suffix Go appends when >1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		fields := strings.Fields(m[2])
		entry := out.Benchmarks[name]
		if entry == nil {
			entry = map[string]float64{}
			out.Benchmarks[name] = entry
		}
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			key := metricKey(fields[i+1])
			prev, seen := entry[key]
			if !seen || (betterIsMax(key) && val > prev) || (!betterIsMax(key) && val < prev) {
				entry[key] = val
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
