package search

import (
	"sync"
	"time"
)

// Duplicate detection, after Orr & Sinnen's duplicate-free state space:
// two partial schedules that assign the same task set to the same
// per-worker completion offsets are the same search state — everything the
// engine can reach from one it can reach from the other, at the same cost.
// The depth-first engine revisits such states constantly (two equal-length
// tasks swapped between two workers, a task skipped at different points),
// and on the tracked Fig-5 batch nearly half of all expansions are
// re-expansions of an already-seen state. The work-stealing driver keys
// each state by a canonical signature over (cursor, depth, CE, loads,
// used-task set) and rejects re-expansions without charging the quantum.
//
// The table is per frame, not shared across workers: whether a shared
// table contains a state would depend on which worker got there first,
// and the pruning — and with it the returned schedule — would stop being
// a deterministic function of the input. A frame's traversal is
// deterministic, so its table is too. The table is also bounded (DupCap
// entries): past the cap, new states are no longer recorded — lookups
// still hit the recorded prefix — so memory stays bounded on huge
// subtrees and the degradation is itself deterministic.

// dupKey is a 128-bit state signature: two independent FNV-1a streams
// over the same words. A single 64-bit hash would make a pruning decision
// on a ~2^-64 collision; squaring that keeps the "signatures equal implies
// states equal" assumption comfortably below any realistic search size.
type dupKey struct{ a, b uint64 }

const (
	fnvOffset  = 14695981039346656037
	fnvPrime   = 1099511628211
	fnvOffset2 = 9650029242287828579
	fnvPrime2  = 1099511628211 + 2*161 // distinct odd prime-ish multiplier stream
)

// stateKey computes the canonical signature of the engine's current state:
// the vertex's representation cursor, its depth, its cost, the per-worker
// completion offsets, and the used-task bitset. Representations are
// required to expand as a pure function of exactly these inputs (see
// Representation), which is what makes equal keys equal states.
func stateKey(v *Vertex, st *PathState) dupKey {
	a := uint64(fnvOffset)
	b := uint64(fnvOffset2)
	mix := func(x uint64) {
		a = (a ^ x) * fnvPrime
		b = (b ^ x) * fnvPrime2
	}
	mix(uint64(v.Cursor))
	mix(uint64(v.Depth))
	mix(uint64(v.CE))
	for _, l := range st.Loads {
		mix(uint64(l))
	}
	if st.Used != nil {
		for _, w := range st.Used.words {
			mix(w)
		}
	}
	return dupKey{a: a, b: b}
}

// dupTable is one frame's bounded duplicate-state set.
type dupTable struct {
	seen map[dupKey]struct{}
	cap  int
}

var dupTablePool = sync.Pool{New: func() any {
	return &dupTable{seen: make(map[dupKey]struct{}, 256)}
}}

func newDupTable(capEntries int) *dupTable {
	t := dupTablePool.Get().(*dupTable)
	t.cap = capEntries
	return t
}

func freeDupTable(t *dupTable) {
	clear(t.seen)
	dupTablePool.Put(t)
}

// visit records the state and reports whether it was already present.
func (t *dupTable) visit(k dupKey) bool {
	if _, ok := t.seen[k]; ok {
		return true
	}
	if len(t.seen) < t.cap {
		t.seen[k] = struct{}{}
	}
	return false
}

// Defaults for the work-stealing knobs (see ParallelOptions).
const (
	defaultStealDepth  = 3
	defaultFrontierCap = 256
	defaultDupCap      = 4096
)

// durationMax is the "no budget pressure" sentinel used in Clock mode.
const durationMax = time.Duration(1<<63 - 1)
