package core

import (
	"fmt"
	"time"

	"rtsads/internal/represent"
	"rtsads/internal/search"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
)

func newAssignmentRep(cfg SearchConfig) search.Representation {
	rep := represent.NewAssignment()
	if cfg.SumCost {
		rep.Cost = search.SumCost{}
	}
	return rep
}

func newSequenceRep(cfg SearchConfig) search.Representation {
	rep := represent.NewSequence(cfg.Workers)
	if cfg.SumCost {
		rep.Cost = search.SumCost{}
	}
	return rep
}

// PhaseResult is the outcome of one scheduling phase.
type PhaseResult struct {
	// Quantum is the Qs(j) the policy allocated.
	Quantum time.Duration
	// Used is the scheduling time actually consumed (<= Quantum in virtual
	// mode). The machine advances its clock by Used; the paper's
	// "scheduling cost" metric is the sum of Used over all phases.
	Used time.Duration
	// Schedule is S_j: the feasible (partial) schedule, in path order,
	// which is also each worker's queue order. Every assignment satisfies
	// phaseEnd + EndOffset <= deadline, so delivery at or before phaseEnd
	// guarantees the deadline (§4.3's theorem).
	Schedule []search.Assignment
	// Stats carries the search counters for the phase — both the
	// deterministic counters the experiments reconcile on and the
	// timing-dependent introspection fields (steals, frames, frontier peak,
	// incumbent updates) the callers forward into obs.PhaseStats for the
	// /metrics search families.
	Stats search.Stats
}

// Planner runs one scheduling phase. Implementations must be deterministic
// functions of the input.
type Planner interface {
	// PlanPhase schedules as much of the batch as the quantum allows.
	PlanPhase(in PhaseInput) (PhaseResult, error)
	// Name identifies the algorithm in results.
	Name() string
}

// CommFunc returns c_lk, the communication cost of running a task on a
// worker (zero when the task has affinity with it).
type CommFunc func(t *task.Task, proc int) time.Duration

// SearchConfig parameterises the search-based planners.
type SearchConfig struct {
	// Workers is the number of working processors.
	Workers int
	// Comm is the communication-cost function (the paper's c_lk).
	Comm CommFunc
	// VertexCost is the scheduling time charged per search vertex
	// generated — the model of the host processor's scheduling speed.
	VertexCost time.Duration
	// PhaseCost is a fixed scheduling time charged once per phase, before
	// the search starts. It models the per-phase work a real host performs
	// regardless of quantum length — re-forming the batch, sorting it by
	// priority, delivering the schedule to the worker ready queues — and is
	// what makes pathologically short fixed quanta expensive, as they are
	// on real hardware. Zero disables it.
	PhaseCost time.Duration
	// Policy allocates the quantum of each phase.
	Policy QuantumPolicy
	// Clock, when non-nil, switches the quantum budget to wall-clock time
	// (live deployments). It must report time elapsed since PlanPhase
	// began.
	Clock func() time.Duration
	// Strategy selects the search's exploration order (default: the
	// paper's depth-first strategy).
	Strategy search.Strategy
	// MaxBacktracks and MaxDepth enable the §3 pruning heuristics; zero
	// disables each.
	MaxBacktracks int
	MaxDepth      int
	// Priority selects the batch's scheduling-priority order (default:
	// EDF, the paper's deadline heuristic).
	Priority Priority
	// SumCost swaps the §4.4 load-balancing cost CE = max_k ce_k for the
	// total-completion alternative Σ_k ce_k — a design-choice ablation.
	SumCost bool
	// Parallel, when positive, runs each phase's search on up to that many
	// work-stealing workers (search.RunParallel); the signature-ordered
	// settle merge is deterministic, so the planner contract is preserved.
	// Zero keeps the sequential engine.
	Parallel int
	// IncumbentCE, when positive, is an initial incumbent cost bound fed
	// to every phase's search (search.Problem.BoundCE): vertices whose CE
	// matches or exceeds it are pruned. The caller asserts the bound comes
	// from a COMPLETE schedule of that cost — policy.Anytime's GA sets it
	// per phase with exactly that contract; a static value here is chiefly
	// an ablation/testing knob. Zero disables it.
	IncumbentCE time.Duration
	// StealDepth, FrontierCap and DupCap tune the work-stealing driver
	// when Parallel is positive: the number of tree levels cut into
	// stealable frames, the per-engine bound on published frames, and the
	// per-frame duplicate-table capacity (negative disables duplicate
	// detection). Zero selects each knob's default; all are ignored by the
	// sequential engine. See search.ParallelOptions.
	StealDepth  int
	FrontierCap int
	DupCap      int
}

// Priority is the batch ordering heuristic.
type Priority int

const (
	// EDF orders the batch by earliest deadline — the paper's heuristic.
	EDF Priority = iota
	// LLF orders the batch by least laxity (deadline minus processing
	// time).
	LLF
)

// String returns the priority order's name.
func (p Priority) String() string {
	switch p {
	case EDF:
		return "edf"
	case LLF:
		return "llf"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Validate reports whether the configuration is usable.
func (c SearchConfig) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: Workers %d must be positive", c.Workers)
	}
	if c.Comm == nil {
		return fmt.Errorf("core: Comm function is nil")
	}
	if c.VertexCost <= 0 && c.Clock == nil {
		return fmt.Errorf("core: need VertexCost > 0 or a Clock")
	}
	if c.PhaseCost < 0 {
		return fmt.Errorf("core: PhaseCost %v must be non-negative", c.PhaseCost)
	}
	if c.Policy == nil {
		return fmt.Errorf("core: Policy is nil")
	}
	if c.Parallel < 0 {
		return fmt.Errorf("core: Parallel %d must be non-negative", c.Parallel)
	}
	if c.StealDepth < 0 {
		return fmt.Errorf("core: StealDepth %d must be non-negative", c.StealDepth)
	}
	if c.FrontierCap < 0 {
		return fmt.Errorf("core: FrontierCap %d must be non-negative", c.FrontierCap)
	}
	if c.IncumbentCE < 0 {
		return fmt.Errorf("core: IncumbentCE %v must be non-negative", c.IncumbentCE)
	}
	return nil
}

// searchPlanner runs one search per phase over a pluggable representation.
// RT-SADS and D-COLS are both instances of it; they differ only in the
// representation, reproducing the paper's controlled comparison.
type searchPlanner struct {
	cfg  SearchConfig
	rep  search.Representation
	name string
	// drained and prob are per-instance scratch reused across phases; a
	// planner serves exactly one host loop, so PlanPhase is deliberately
	// not reentrant. search.Run does not retain the Problem past return.
	drained []time.Duration
	prob    search.Problem
}

// NewRTSADS returns the paper's algorithm: assignment-oriented search with
// the self-adjusting quantum and the load-balancing cost function.
func NewRTSADS(cfg SearchConfig) (Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &searchPlanner{cfg: cfg, rep: newAssignmentRep(cfg), name: "RT-SADS"}, nil
}

// NewDCOLS returns the sequence-oriented baseline (Distributed Continuous
// On-Line Scheduling). Per §5.2, it receives the same quantum formula as
// RT-SADS so that only the representation differs.
func NewDCOLS(cfg SearchConfig) (Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &searchPlanner{cfg: cfg, rep: newSequenceRep(cfg), name: "D-COLS"}, nil
}

// NewSearchPlanner returns a planner over an arbitrary representation —
// the hook ablation experiments use to test representation variants.
func NewSearchPlanner(cfg SearchConfig, rep search.Representation, name string) (Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("core: representation is nil")
	}
	return &searchPlanner{cfg: cfg, rep: rep, name: name}, nil
}

// Name implements Planner.
func (s *searchPlanner) Name() string { return s.name }

// PlanPhase implements Planner: sort the batch by scheduling priority
// (EDF), allocate Qs(j), and search the representation's task space for a
// feasible partial schedule until a leaf, a dead-end, or quantum expiry.
func (s *searchPlanner) PlanPhase(in PhaseInput) (PhaseResult, error) {
	if len(in.Loads) != s.cfg.Workers {
		return PhaseResult{}, fmt.Errorf("core: phase has %d loads for %d workers", len(in.Loads), s.cfg.Workers)
	}
	quantum := s.cfg.Policy.Quantum(in)
	// The fixed per-phase cost comes off the top of the quantum; phases
	// too short to cover it schedule nothing.
	budget := quantum - s.cfg.PhaseCost
	if budget <= 0 {
		return PhaseResult{Quantum: quantum, Used: quantum}, nil
	}
	if s.cfg.Priority == LLF {
		task.SortLLF(in.Batch)
	} else {
		task.SortEDF(in.Batch)
	}
	// Workers also drain during the phase-cost prefix; pre-discount it so
	// the search's max(0, load - budget) equals max(0, Load_k(j-1) - Qs(j))
	// exactly (clamps compose: max(0, max(0, l-c) - b) == max(0, l-c-b)).
	if s.drained == nil {
		s.drained = make([]time.Duration, len(in.Loads))
	}
	drained := s.drained
	for k, l := range in.Loads {
		drained[k] = simtime.NonNeg(l - s.cfg.PhaseCost)
	}
	p := &s.prob
	*p = search.Problem{
		Now:           in.Now,
		Quantum:       budget,
		Tasks:         in.Batch,
		Workers:       s.cfg.Workers,
		BaseLoad:      drained,
		Comm:          s.cfg.Comm,
		VertexCost:    s.cfg.VertexCost,
		Clock:         s.cfg.Clock,
		Strategy:      s.cfg.Strategy,
		MaxBacktracks: s.cfg.MaxBacktracks,
		MaxDepth:      s.cfg.MaxDepth,
		BoundCE:       s.cfg.IncumbentCE,
	}
	// The feasibility test must still charge the full quantum: execution is
	// only guaranteed to start by in.Now + quantum. Shift the search's
	// phase-end reference by the phase cost.
	p.Now = in.Now.Add(s.cfg.PhaseCost)
	var res *search.Result
	var err error
	if s.cfg.Parallel > 0 {
		res, err = search.RunParallel(p, s.rep, search.ParallelOptions{
			Degree:      s.cfg.Parallel,
			StealDepth:  s.cfg.StealDepth,
			FrontierCap: s.cfg.FrontierCap,
			DupCap:      s.cfg.DupCap,
		})
	} else {
		res, err = search.Run(p, s.rep)
	}
	if err != nil {
		return PhaseResult{}, fmt.Errorf("core: %s search: %w", s.name, err)
	}
	stats := res.Stats
	stats.Consumed = minDur(s.cfg.PhaseCost+res.Stats.Consumed, quantum)
	out := PhaseResult{
		Quantum:  quantum,
		Used:     stats.Consumed,
		Schedule: res.Schedule(),
		Stats:    stats,
	}
	if s.cfg.Parallel == 0 {
		// Sequential results are exclusively ours: recycle the result and its
		// best path now that the schedule has been copied out. Parallel
		// results stay with the GC — the work-stealing driver's frame
		// timelines may hold extra references into the best path.
		res.Release()
	}
	return out, nil
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
