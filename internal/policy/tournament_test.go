package policy

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"rtsads/internal/workload"
)

// TestTournamentSmoke races every registered policy over a small corpus:
// every entry must finish without error — which includes per-run terminal
// accounting and the §4.3 zero-scheduled-miss guarantee — and both output
// formats must cover the whole registry.
func TestTournamentSmoke(t *testing.T) {
	small := workload.DefaultParams(4)
	small.NumTransactions = 120
	report, err := Tournament(TournamentConfig{
		Corpus: []workload.Params{small},
		Runs:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := Default().Names()
	if len(report.Entries) != len(names) {
		t.Fatalf("report covers %d policies, registry has %d", len(report.Entries), len(names))
	}
	for _, e := range report.Entries {
		if e.Err != "" {
			t.Errorf("%s: %s", e.Policy, e.Err)
		}
		if len(e.Cells) != 1 {
			t.Errorf("%s: %d cells, want 1", e.Policy, len(e.Cells))
			continue
		}
		if e.Cells[0].Tasks == 0 {
			t.Errorf("%s: cell ran no tasks", e.Policy)
		}
		if e.GuaranteeRatio <= 0 || e.GuaranteeRatio > 1 {
			t.Errorf("%s: guarantee ratio %v out of range", e.Policy, e.GuaranteeRatio)
		}
	}

	var table strings.Builder
	if err := report.Render(&table); err != nil {
		t.Fatal(err)
	}
	var jsonl strings.Builder
	if err := report.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !strings.Contains(table.String(), name) {
			t.Errorf("table missing %q:\n%s", name, table.String())
		}
		if !strings.Contains(jsonl.String(), `"policy":"`+name+`"`) {
			t.Errorf("jsonl missing %q", name)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(jsonl.String()))
	lines := 0
	for sc.Scan() {
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("jsonl line %d: %v", lines, err)
		}
		lines++
	}
	if lines != len(names) {
		t.Fatalf("jsonl has %d lines, want %d", lines, len(names))
	}
}

// TestTournamentDeterminism: two tournaments from the same configuration
// must agree entry for entry — the fan-out across CPUs must not leak into
// the report.
func TestTournamentDeterminism(t *testing.T) {
	small := workload.DefaultParams(4)
	small.NumTransactions = 100
	cfg := TournamentConfig{
		Corpus:   []workload.Params{small},
		Runs:     1,
		Policies: []string{"RT-SADS", "RT-SADS+GA", "EDF-greedy"},
	}
	a, err := Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tournament(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Policy != eb.Policy || ea.GuaranteeRatio != eb.GuaranteeRatio ||
			ea.ShedMiss != eb.ShedMiss || ea.SchedulingMS != eb.SchedulingMS {
			t.Fatalf("tournament not deterministic:\n  a: %+v\n  b: %+v", ea, eb)
		}
	}
}

// TestTournamentReportsUnknownPolicy: a bad contender fails its entry but
// the report still covers everyone.
func TestTournamentReportsUnknownPolicy(t *testing.T) {
	small := workload.DefaultParams(2)
	small.NumTransactions = 40
	report, err := Tournament(TournamentConfig{
		Corpus:   []workload.Params{small},
		Runs:     1,
		Policies: []string{"EDF-greedy", "bogus"},
	})
	if err == nil {
		t.Fatal("unknown contender did not surface as an error")
	}
	if len(report.Entries) != 2 {
		t.Fatalf("report has %d entries, want 2", len(report.Entries))
	}
	if report.Entries[0].Err != "" {
		t.Fatalf("healthy contender failed: %s", report.Entries[0].Err)
	}
	if report.Entries[1].Err == "" {
		t.Fatal("bad contender's entry carries no error")
	}
}
