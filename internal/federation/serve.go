package federation

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"rtsads/internal/admission"
	"rtsads/internal/core"
	"rtsads/internal/experiment"
	"rtsads/internal/federation/wire"
	"rtsads/internal/livecluster"
	"rtsads/internal/metrics"
	"rtsads/internal/obs"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
	"rtsads/internal/workload"
)

// ServeShardOptions tunes one shard-serving session.
type ServeShardOptions struct {
	// HelloTimeout bounds how long the session may take to complete the
	// handshake and deliver the hello (default 30s).
	HelloTimeout time.Duration
	// Obs, when non-nil, is used instead of a session-local observer —
	// the serving process can expose its own /metrics.
	Obs *obs.Observer
}

// shardServer is one shard session: the cluster, its observer, and the
// framed connection back to the router. Writers (summary ticker, reject
// callbacks, final results) serialize on wmu; one goroutine reads.
type shardServer struct {
	conn    *wire.Conn
	cl      *livecluster.Cluster
	o       *obs.Observer
	timeout time.Duration

	wmu sync.Mutex

	vmu      sync.Mutex
	verdicts map[int32]chan bool

	// smu guards the checkpoint state: the settle buffer and verdict
	// counts fed by the observer's OnSettle hook, plus the per-session
	// checkpoint sequence. Both are updated in one critical section per
	// settle, so a checkpoint's counter snapshot covers exactly the IDs
	// shipped through its sequence — never more, never less.
	smu        sync.Mutex
	settled    []int32
	ckptCounts map[string]int64
	ckptSeq    uint64
}

// runOutcome carries the cluster run's return values across a channel.
type runOutcome struct {
	res *metrics.RunResult
	err error
}

// ServeShard runs one scheduler shard behind the given connection: it
// completes the wire handshake, regenerates the workload from the hello's
// parameters (the task database never crosses the wire), projects this
// shard's slice, and runs a live cluster fed exclusively by the router's
// Submit frames until the router seals the feed. The final result and
// journal ship back before the session closes. The caller owns the
// listener; ServeShard owns (and closes) conn.
func ServeShard(nc net.Conn, opt ServeShardOptions) error {
	defer nc.Close()
	helloTimeout := opt.HelloTimeout
	if helloTimeout <= 0 {
		helloTimeout = 30 * time.Second
	}
	conn := wire.NewConn(nc)
	deadline := time.Now().Add(helloTimeout)
	conn.SetReadDeadline(deadline)
	conn.SetWriteDeadline(deadline)
	if err := conn.ReadHandshake(); err != nil {
		return err
	}
	if err := conn.WriteHandshake(); err != nil {
		return err
	}
	typ, body, err := conn.ReadFrame()
	if err != nil {
		return fmt.Errorf("federation: read hello: %w", err)
	}
	if typ != wire.TypeHello {
		return fmt.Errorf("federation: expected hello, got frame type %d", typ)
	}
	var hello wire.Hello
	if err := json.Unmarshal(body, &hello); err != nil {
		return refuse(conn, fmt.Errorf("federation: decode hello: %w", err))
	}

	srv, runErrc, err := startShard(conn, hello, opt)
	if err != nil {
		return refuse(conn, err)
	}
	conn.SetReadDeadline(time.Time{})
	conn.SetWriteDeadline(time.Time{})

	// The router blocks on the first summary before going async.
	if err := srv.sendSummary(); err != nil {
		return err
	}

	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		srv.summaryLoop(stopTick)
	}()
	readErrc := make(chan error, 1)
	go srv.readLoop(readErrc)

	var sessionErr error
	var out runOutcome
	select {
	case err := <-readErrc:
		// The router vanished mid-run: no verdict or result this session
		// produces can be delivered, and the router salvages or charges the
		// outstanding work on its own books the moment it notices the death.
		// Abort with zero grace — shed the undelivered backlog, let in-flight
		// worker jobs drain — so a serving loop's listener frees up for the
		// router's rejoin dial instead of blocking behind a useless drain.
		sessionErr = err
		srv.cl.Seal()
		srv.cl.Stop(0)
		out = <-runErrc
	case out = <-runErrc:
	}
	close(stopTick)
	tickWG.Wait()
	if sessionErr != nil {
		return sessionErr
	}
	if out.err != nil {
		srv.send(wire.TypeError, []byte(out.err.Error()))
		return out.err
	}

	// Ship the closing state: final counters, a final checkpoint covering
	// every verdict, the result, the journal, then a clean goodbye.
	if err := srv.sendSummary(); err != nil {
		return err
	}
	if err := srv.sendCheckpoint(); err != nil {
		return err
	}
	if err := srv.sendJSON(wire.TypeResult, out.res); err != nil {
		return err
	}
	entries, evicted := srv.o.Journal().Export()
	if err := srv.sendJSON(wire.TypeJournal, wire.JournalExport{Entries: entries, Evicted: evicted}); err != nil {
		return err
	}
	return srv.send(wire.TypeBye, nil)
}

// refuse reports a setup error to the router before failing the session.
func refuse(conn *wire.Conn, err error) error {
	conn.WriteFrame(wire.TypeError, []byte(err.Error()))
	return err
}

// startShard builds the cluster a hello describes and starts its run.
func startShard(conn *wire.Conn, hello wire.Hello, opt ServeShardOptions) (*shardServer, <-chan runOutcome, error) {
	tp := Topology{Shards: hello.Shards, WorkersPerShard: hello.WorkersPerShard}
	if err := tp.Validate(); err != nil {
		return nil, nil, err
	}
	if hello.Shard < 0 || hello.Shard >= tp.Shards {
		return nil, nil, fmt.Errorf("federation: shard %d out of range [0,%d)", hello.Shard, tp.Shards)
	}
	w, err := workload.Generate(hello.Params)
	if err != nil {
		return nil, nil, err
	}
	if got, want := w.Params.Workers, tp.TotalWorkers(); got != want {
		return nil, nil, fmt.Errorf("federation: workload has %d workers but topology needs %d", got, want)
	}
	clock, err := livecluster.NewClockAt(time.Unix(0, hello.StartUnixNano), hello.Scale)
	if err != nil {
		return nil, nil, err
	}
	hb := time.Duration(hello.HeartbeatNano)
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	timeout := time.Duration(hello.TimeoutNano)
	if timeout <= 0 {
		timeout = 5 * hb
	}
	o := opt.Obs
	if o == nil {
		o = obs.New(hello.JournalCap)
	}
	srv := &shardServer{
		conn:       conn,
		o:          o,
		timeout:    timeout,
		verdicts:   make(map[int32]chan bool),
		ckptCounts: make(map[string]int64),
	}
	// Every terminal verdict lands in the checkpoint buffer together with
	// its bucket count — the consistency sendCheckpoint's salvage
	// accounting depends on.
	o.OnSettle(srv.noteSettled)
	var degrade *core.DegradeConfig
	if hello.DegradeAfter > 0 {
		degrade = &core.DegradeConfig{After: hello.DegradeAfter}
	}
	cl, err := livecluster.New(livecluster.Config{
		Workload:     ShardWorkload(w, tp, hello.Shard),
		Algorithm:    experiment.Algorithm(hello.Algorithm),
		Scale:        hello.Scale,
		Clock:        clock,
		External:     true,
		OnReject:     srv.onReject,
		Obs:          o,
		Liveness:     livecluster.Liveness{HeartbeatEvery: hb, Timeout: timeout},
		Admission:    hello.Admission,
		Backpressure: hello.Backpressure,
		SlackGuard:   time.Duration(hello.SlackGuardNano),
		Degrade:      degrade,
		Parallel:     hello.Parallel,
		StealDepth:   hello.StealDepth,
		FrontierCap:  hello.FrontierCap,
		DupCap:       hello.DupCap,
	})
	if err != nil {
		return nil, nil, err
	}
	srv.cl = cl
	runErrc := make(chan runOutcome, 1)
	go func() {
		res, err := cl.Run()
		runErrc <- runOutcome{res: res, err: err}
	}()
	return srv, runErrc, nil
}

// send writes one frame under the session's write lock and deadline.
func (s *shardServer) send(typ byte, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	d := s.timeout
	if d < 5*time.Second {
		d = 5 * time.Second
	}
	s.conn.SetWriteDeadline(time.Now().Add(d))
	return s.conn.WriteFrame(typ, payload)
}

func (s *shardServer) sendJSON(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.send(typ, payload)
}

func (s *shardServer) sendSummary() error {
	return s.sendJSON(wire.TypeSummary, wire.Summary{
		Load:     s.cl.LoadSummary(),
		Counters: s.o.Registry().Snapshot(),
	})
}

// noteSettled is the observer's OnSettle hook: the settled ID and its
// verdict bucket are recorded in one critical section, so the cumulative
// counts always cover exactly the buffered IDs.
func (s *shardServer) noteSettled(id task.ID, verdict string) {
	s.smu.Lock()
	s.settled = append(s.settled, int32(id))
	s.ckptCounts[verdict]++
	s.smu.Unlock()
}

// sendCheckpoint ships the settled IDs accumulated since the previous
// checkpoint plus the cumulative settle-derived verdict counts. Because
// buffer and counts are maintained atomically per settle, the counts
// charge exactly the tasks whose IDs shipped through this sequence — the
// invariant that lets the router treat "submitted minus checkpointed
// minus migrated-away" as exactly the salvageable outstanding set, with
// no task double-counted or dropped across a kill.
func (s *shardServer) sendCheckpoint() error {
	sealed := s.cl.LoadSummary().Sealed
	s.smu.Lock()
	ids := s.settled
	s.settled = nil
	counters := make(map[string]int64, len(s.ckptCounts))
	for k, v := range s.ckptCounts {
		counters[k] = v
	}
	s.ckptSeq++
	seq := s.ckptSeq
	s.smu.Unlock()
	return s.sendJSON(wire.TypeCheckpoint, wire.Checkpoint{
		Seq:      seq,
		Settled:  ids,
		Counters: counters,
		Sealed:   sealed,
	})
}

// summaryLoop republishes the load summary and counters at the heartbeat
// cadence; each summary doubles as the shard→router heartbeat.
func (s *shardServer) summaryLoop(stop <-chan struct{}) {
	hb := s.timeout / 5
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if s.sendSummary() != nil {
			return
		}
		if s.sendCheckpoint() != nil {
			return
		}
	}
}

// onReject is the cluster's bounce callback: it round-trips one Reject
// frame to the router and blocks the host loop on the verdict, exactly
// like an in-process OnReject call. Silence past the liveness timeout is
// a declined migration — the shard sheds locally rather than stranding
// the task.
func (s *shardServer) onReject(t *task.Task, reason admission.Reason, now simtime.Instant) bool {
	id := int32(t.ID)
	ch := make(chan bool, 1)
	s.vmu.Lock()
	s.verdicts[id] = ch
	s.vmu.Unlock()
	defer func() {
		s.vmu.Lock()
		delete(s.verdicts, id)
		s.vmu.Unlock()
	}()
	payload := wire.EncodeReject(nil, wire.Reject{ID: id, Reason: string(reason), NowNano: int64(now)})
	if err := s.send(wire.TypeReject, payload); err != nil {
		return false
	}
	select {
	case ok := <-ch:
		return ok
	case <-time.After(s.timeout):
		return false
	}
}

// readLoop consumes the router's frames until the connection breaks. The
// idle deadline is the liveness timeout; the router's heartbeats keep it
// from firing between submissions.
func (s *shardServer) readLoop(errc chan<- error) {
	for {
		s.conn.SetReadDeadline(time.Now().Add(s.timeout))
		typ, body, err := s.conn.ReadFrame()
		if err != nil {
			errc <- fmt.Errorf("federation: router connection lost: %w", err)
			return
		}
		switch typ {
		case wire.TypeSubmit:
			ts, err := wire.DecodeSubmit(body, func() *task.Task { return new(task.Task) })
			if err != nil {
				errc <- err
				return
			}
			// Submit-after-seal only happens when the router's seal
			// crossed a submit in flight; the router's books already
			// treat sealing as the end, so dropping is correct.
			_ = s.cl.SubmitBatch(ts)
		case wire.TypeVerdict:
			v, err := wire.DecodeVerdict(body)
			if err != nil {
				errc <- err
				return
			}
			s.vmu.Lock()
			ch := s.verdicts[v.ID]
			s.vmu.Unlock()
			if ch != nil {
				ch <- v.Accepted
			}
		case wire.TypeSeal:
			s.cl.Seal()
		case wire.TypeHeartbeat:
			// Liveness only.
		case wire.TypeBye, wire.TypeError:
			errc <- fmt.Errorf("federation: router closed the session (frame type %d)", typ)
			return
		default:
			errc <- fmt.Errorf("federation: router sent unknown frame type %d", typ)
			return
		}
	}
}
