package wire

import (
	"encoding/json"
	"math"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"rtsads/internal/affinity"
	"rtsads/internal/rng"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
)

// pipe returns a connected framed pair.
func pipe(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestHandshake(t *testing.T) {
	a, b := pipe(t)
	errCh := make(chan error, 1)
	go func() { errCh <- a.WriteHandshake() }()
	if err := b.ReadHandshake(); err != nil {
		t.Fatalf("ReadHandshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("WriteHandshake: %v", err)
	}
}

func TestHandshakeRejectsWrongVersion(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() { a.Write([]byte(Magic + "\x7f")) }()
	if err := NewConn(b).ReadHandshake(); err == nil {
		t.Fatal("handshake accepted an unknown version")
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() { a.Write([]byte("HTTP\x01")) }()
	if err := NewConn(b).ReadHandshake(); err == nil {
		t.Fatal("handshake accepted foreign magic")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipe(t)
	payload := []byte("hello, shard")
	// Writes on one Conn must be serialized by the caller; join each write
	// goroutine before issuing the next.
	errCh := make(chan error, 1)
	go func() { errCh <- a.WriteFrame(TypeSeal, payload) }()
	typ, got, err := b.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if typ != TypeSeal || string(got) != string(payload) {
		t.Fatalf("got frame (%d, %q), want (%d, %q)", typ, got, TypeSeal, payload)
	}
	// Empty payloads (heartbeats, seals) must round-trip too.
	go func() { errCh <- a.WriteFrame(TypeHeartbeat, nil) }()
	typ, got, err = b.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame empty: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("WriteFrame empty: %v", err)
	}
	if typ != TypeHeartbeat || len(got) != 0 {
		t.Fatalf("got frame (%d, %d bytes), want (%d, 0 bytes)", typ, len(got), TypeHeartbeat)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		a.Write([]byte{0xff, 0xff, 0xff, 0xff, TypeSubmit})
	}()
	if _, _, err := NewConn(b).ReadFrame(); err == nil {
		t.Fatal("ReadFrame accepted an oversize frame header")
	}
}

func TestTaskCodecRoundTrip(t *testing.T) {
	src := rng.New(7)
	tasks := make([]*task.Task, 64)
	for i := range tasks {
		tasks[i] = &task.Task{
			ID:       task.ID(src.Intn(1 << 20)),
			Arrival:  simtime.Instant(src.Intn(1 << 40)),
			Proc:     time.Duration(src.Intn(1 << 30)),
			Deadline: simtime.Instant(src.Intn(1 << 41)),
			Affinity: affinity.Set(src.Uint64()),
			Actual:   time.Duration(src.Intn(1 << 29)),
			Payload:  int32(src.Intn(1 << 16)),
		}
	}
	// Extremes: zero task, Never deadline, negative payload.
	tasks = append(tasks,
		&task.Task{},
		&task.Task{ID: math.MaxInt32, Deadline: simtime.Never, Affinity: ^affinity.Set(0)},
		&task.Task{ID: 1, Payload: -3},
	)

	payload := AppendSubmit(nil, tasks)
	wantLen := 4 + len(tasks)*TaskRecordSize
	if len(payload) != wantLen {
		t.Fatalf("submit payload is %d bytes, want %d", len(payload), wantLen)
	}
	got, err := DecodeSubmit(payload, func() *task.Task { return new(task.Task) })
	if err != nil {
		t.Fatalf("DecodeSubmit: %v", err)
	}
	if len(got) != len(tasks) {
		t.Fatalf("decoded %d tasks, want %d", len(got), len(tasks))
	}
	for i := range tasks {
		if !reflect.DeepEqual(*got[i], *tasks[i]) {
			t.Fatalf("task %d: got %+v, want %+v", i, *got[i], *tasks[i])
		}
	}
}

func TestDecodeSubmitRejectsTruncated(t *testing.T) {
	payload := AppendSubmit(nil, []*task.Task{{ID: 1}, {ID: 2}})
	for _, cut := range []int{1, 4, 5, len(payload) - 1} {
		if _, err := DecodeSubmit(payload[:cut], func() *task.Task { return new(task.Task) }); err == nil {
			t.Fatalf("DecodeSubmit accepted a %d-byte truncation", cut)
		}
	}
}

func TestRejectVerdictRoundTrip(t *testing.T) {
	r := Reject{ID: 99, Reason: "queue-full", NowNano: 123456789}
	got, err := DecodeReject(EncodeReject(nil, r))
	if err != nil {
		t.Fatalf("DecodeReject: %v", err)
	}
	if got != r {
		t.Fatalf("reject round-trip: got %+v, want %+v", got, r)
	}
	if _, err := DecodeReject([]byte{1, 2, 3}); err == nil {
		t.Fatal("DecodeReject accepted a truncated payload")
	}

	for _, v := range []Verdict{{ID: 7, Accepted: true}, {ID: -1, Accepted: false}} {
		got, err := DecodeVerdict(EncodeVerdict(nil, v))
		if err != nil {
			t.Fatalf("DecodeVerdict: %v", err)
		}
		if got != v {
			t.Fatalf("verdict round-trip: got %+v, want %+v", got, v)
		}
	}
	if _, err := DecodeVerdict([]byte{0}); err == nil {
		t.Fatal("DecodeVerdict accepted a truncated payload")
	}
}

// TestCheckpointRoundTrip sends a Checkpoint frame across a framed pair and
// demands the durable-progress payload — sequence, settled IDs, cumulative
// verdict counters and seal bit — survive the wire exactly.
func TestCheckpointRoundTrip(t *testing.T) {
	a, b := pipe(t)
	want := Checkpoint{
		Seq:     7,
		Settled: []int32{3, 11, 42},
		Counters: map[string]int64{
			"rtsads_tasks_hit_total":  2,
			"rtsads_tasks_lost_total": 1,
		},
		Sealed: true,
	}
	payload, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- a.WriteFrame(TypeCheckpoint, payload) }()
	typ, body, err := b.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if typ != TypeCheckpoint {
		t.Fatalf("frame type = %d, want %d", typ, TypeCheckpoint)
	}
	var got Checkpoint
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpoint round-trip: got %+v, want %+v", got, want)
	}
}

// TestHelloRejoinFieldsRoundTrip checks the v2 rejoin handshake fields ship
// through the Hello JSON, and that a first-contact hello omits them — v1
// shards must never see rejoin keys they would not understand.
func TestHelloRejoinFieldsRoundTrip(t *testing.T) {
	h := Hello{Shards: 2, WorkersPerShard: 2, Shard: 1, Rejoin: true, Epoch: 3, ResumeSeq: 19}
	payload, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Hello
	if err := json.Unmarshal(payload, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !got.Rejoin || got.Epoch != 3 || got.ResumeSeq != 19 {
		t.Fatalf("rejoin fields lost in round-trip: %+v", got)
	}

	first, err := json.Marshal(Hello{Shards: 2, WorkersPerShard: 2})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{"rejoin", "epoch", "resume_seq"} {
		if strings.Contains(string(first), key) {
			t.Errorf("first-contact hello leaks %q: %s", key, first)
		}
	}
}
