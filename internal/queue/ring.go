package queue

// Ring is a growable FIFO queue backed by a circular buffer. The zero value
// is an empty, ready-to-use queue. It is not safe for concurrent use.
type Ring[T any] struct {
	buf        []T
	head, size int
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.size }

// PushBack appends v to the tail of the queue.
func (r *Ring[T]) PushBack(v T) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
}

// PopFront removes and returns the head of the queue. The second result is
// false when the queue is empty.
func (r *Ring[T]) PopFront() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

// Front returns the head of the queue without removing it. The second
// result is false when the queue is empty.
func (r *Ring[T]) Front() (T, bool) {
	if r.size == 0 {
		var zero T
		return zero, false
	}
	return r.buf[r.head], true
}

// Reset empties the queue while keeping its backing storage.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.size; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head, r.size = 0, 0
}

func (r *Ring[T]) grow() {
	next := make([]T, max(4, 2*len(r.buf)))
	for i := 0; i < r.size; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
