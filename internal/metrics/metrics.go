// Package metrics defines the per-run results the paper's evaluation
// reports — deadline hit ratio, scheduling cost, search behaviour — and the
// aggregation of repeated runs into means and confidence intervals.
package metrics

import (
	"fmt"
	"time"

	"rtsads/internal/histogram"
	"rtsads/internal/simtime"
	"rtsads/internal/stats"
	"rtsads/internal/task"
)

// Completion records the fate of one task.
type Completion struct {
	Task   task.ID
	Proc   int // -1 when the task was never executed
	Start  simtime.Instant
	Finish simtime.Instant
	Hit    bool // finished at or before its deadline
	// Executed is false for tasks purged (or still unscheduled) when their
	// deadline passed.
	Executed bool
}

// RunResult is the outcome of one complete simulation run.
type RunResult struct {
	Algorithm string
	Workers   int

	Total int // tasks generated
	Hits  int // tasks completed by their deadline
	// Purged counts tasks dropped at batch formation because their
	// deadlines had already passed (p_i + t_c > d_i).
	Purged int
	// ScheduledMissed counts tasks that were scheduled for execution and
	// then missed their deadline anyway. The §4.3 theorem guarantees it is
	// zero for every planner in this repository; the machine still counts
	// rather than assumes.
	ScheduledMissed int
	// LostToFailure counts tasks dropped because their worker crashed
	// before they completed (failure-injection runs only).
	LostToFailure int
	// WorkerFailures counts workers that permanently failed during the
	// run (live cluster under fault injection).
	WorkerFailures int
	// Rerouted counts tasks reclaimed from a failed or unresponsive
	// worker and fed back into scheduling against the surviving machine.
	// A rerouted task's eventual fate still lands in Hits, Purged,
	// ScheduledMissed, LostToFailure or Shed.
	Rerouted int

	// Admitted counts tasks that passed the arrival-time admission gate
	// and entered the ready queue (re-admissions of reclaimed tasks are
	// not counted twice). With admission control disabled it equals the
	// number of arrivals absorbed.
	Admitted int
	// Shed counts tasks rejected or evicted by admission control — a
	// terminal bucket alongside Hits, Purged, ScheduledMissed and
	// LostToFailure: Hits + Purged + ScheduledMissed + LostToFailure +
	// Shed == Total. The Shed* fields break it down by reason and sum to
	// Shed exactly.
	Shed int
	// ShedHopeless counts tasks rejected at enqueue because they could
	// not meet their deadline even on an idle worker.
	ShedHopeless int
	// ShedQueueFull counts tasks rejected or evicted because the bounded
	// ready queue was at capacity.
	ShedQueueFull int
	// ShedShutdown counts tasks turned away during a graceful shutdown.
	ShedShutdown int
	// ShedInfeasible counts tasks rejected by the admission controller's
	// schedulability predicate (the policy registry's utilization
	// quick-test): individually servable, but infeasible together with
	// the queue they would have joined.
	ShedInfeasible int
	// Bounced counts tasks this scheduler domain handed back to a
	// federation router for cross-shard migration instead of shedding or
	// losing them locally. It is a terminal bucket for *this* domain —
	// Hits + Purged + ScheduledMissed + LostToFailure + Shed + Bounced ==
	// Total — while the migrated task is counted again in the sibling
	// shard's Total, so federation-wide the non-bounce buckets still sum
	// to the number of distinct tasks. Zero outside federated runs.
	Bounced int
	// Overloads counts job deliveries deferred by backend backpressure
	// (the worker's queue cap was reached and the host was told to retry).
	// Deferred tasks return to the batch, so this is not a terminal bucket.
	Overloads int

	// Degradations counts transitions into degraded-mode planning (the
	// search planner replaced by the greedy fallback); Recoveries counts
	// transitions back. DegradedPhases counts phases planned while
	// degraded.
	Degradations   int
	Recoveries     int
	DegradedPhases int

	Phases            int
	SchedulingTime    time.Duration // Σ Used over phases: the paper's scheduling cost
	VerticesGenerated int
	Backtracks        int
	DeadEnds          int // phases that ended in a dead-end
	QuantaExpired     int // phases that ended by quantum expiry

	Makespan   simtime.Instant // when the last executed task finished
	WorkerBusy []time.Duration // per-worker busy time

	// Response is the distribution of response times (finish - arrival)
	// over executed tasks.
	Response histogram.Histogram

	Completions []Completion // per-task records (optional; nil when disabled)
}

// HitRatio returns the paper's deadline-compliance metric: the fraction of
// all generated tasks that completed by their deadline.
func (r *RunResult) HitRatio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Misses returns the number of tasks that did not meet their deadline.
func (r *RunResult) Misses() int { return r.Total - r.Hits }

// Utilization returns aggregate worker busy time divided by the capacity
// available up to the makespan.
func (r *RunResult) Utilization() float64 {
	if r.Makespan <= 0 || len(r.WorkerBusy) == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range r.WorkerBusy {
		busy += b
	}
	capacity := time.Duration(r.Makespan) * time.Duration(len(r.WorkerBusy))
	return float64(busy) / float64(capacity)
}

// IdleWorkers returns how many workers never executed a task — the
// signature of the sequence-oriented representation's shallow-termination
// pathology (§3).
func (r *RunResult) IdleWorkers() int {
	idle := 0
	for _, b := range r.WorkerBusy {
		if b == 0 {
			idle++
		}
	}
	return idle
}

// String renders a one-line summary.
func (r *RunResult) String() string {
	s := fmt.Sprintf("%s w=%d hit=%.1f%% (hits=%d purged=%d schedMissed=%d) phases=%d sched=%v deadEnds=%d",
		r.Algorithm, r.Workers, 100*r.HitRatio(), r.Hits, r.Purged, r.ScheduledMissed,
		r.Phases, r.SchedulingTime, r.DeadEnds)
	if r.LostToFailure > 0 {
		s += fmt.Sprintf(" lostToFailure=%d", r.LostToFailure)
	}
	if r.WorkerFailures > 0 {
		s += fmt.Sprintf(" workerFailures=%d", r.WorkerFailures)
	}
	if r.Rerouted > 0 {
		s += fmt.Sprintf(" rerouted=%d", r.Rerouted)
	}
	if r.Shed > 0 {
		s += fmt.Sprintf(" shed=%d (hopeless=%d queueFull=%d shutdown=%d infeasible=%d)",
			r.Shed, r.ShedHopeless, r.ShedQueueFull, r.ShedShutdown, r.ShedInfeasible)
	}
	if r.Bounced > 0 {
		s += fmt.Sprintf(" bounced=%d", r.Bounced)
	}
	if r.Overloads > 0 {
		s += fmt.Sprintf(" overloads=%d", r.Overloads)
	}
	if r.Degradations > 0 {
		s += fmt.Sprintf(" degradations=%d recoveries=%d degradedPhases=%d",
			r.Degradations, r.Recoveries, r.DegradedPhases)
	}
	return s
}

// Aggregate summarises repeated runs of one configuration.
type Aggregate struct {
	Algorithm string
	Runs      int

	HitRatio        stats.Summary
	SchedulingMS    stats.Summary // scheduling cost in milliseconds
	Phases          stats.Summary
	DeadEnds        stats.Summary
	Backtracks      stats.Summary
	Vertices        stats.Summary
	IdleWorkers     stats.Summary
	Utilization     stats.Summary
	LostToFailure   stats.Summary
	WorkerFailures  stats.Summary
	Rerouted        stats.Summary
	ScheduledMissed int // summed; must stay zero
	// Response pools the per-run response-time distributions.
	Response histogram.Histogram
	// HitRatios keeps the raw per-run hit ratios, in run order, so that
	// algorithms evaluated on the same seeds can be compared with a paired
	// difference-of-means test.
	HitRatios []float64
}

// Add folds one run into the aggregate.
func (a *Aggregate) Add(r *RunResult) {
	if a.Algorithm == "" {
		a.Algorithm = r.Algorithm
	}
	a.Runs++
	a.HitRatio.Add(r.HitRatio())
	a.HitRatios = append(a.HitRatios, r.HitRatio())
	a.SchedulingMS.Add(float64(r.SchedulingTime) / float64(time.Millisecond))
	a.Phases.Add(float64(r.Phases))
	a.DeadEnds.Add(float64(r.DeadEnds))
	a.Backtracks.Add(float64(r.Backtracks))
	a.Vertices.Add(float64(r.VerticesGenerated))
	a.IdleWorkers.Add(float64(r.IdleWorkers()))
	a.Utilization.Add(r.Utilization())
	a.LostToFailure.Add(float64(r.LostToFailure))
	a.WorkerFailures.Add(float64(r.WorkerFailures))
	a.Rerouted.Add(float64(r.Rerouted))
	a.ScheduledMissed += r.ScheduledMissed
	a.Response.Merge(&r.Response)
}

// HitRatioCI returns the half-width of the 99% confidence interval on the
// mean hit ratio (the paper's reporting convention), or 0 when it cannot be
// computed.
func (a *Aggregate) HitRatioCI() float64 {
	ci, err := a.HitRatio.CI(0.99)
	if err != nil {
		return 0
	}
	return ci
}
