// Package policy is the pluggable policy engine: a registry of named
// scheduling policies over the phase-planner contract, in the spirit of
// k8s-cluster-simulator's ProposedScheduler. Each registered Spec bundles a
// planner factory with the registry's two extension points — a Prioritizer
// (the task order a list planner commits to) and an admission-time
// Predicate (a utilization-style schedulability quick-test) — so comparing
// or extending policies no longer means editing core.
//
// The registry re-registers the paper's zoo (RT-SADS, D-COLS and its
// least-loaded variant, EDF-greedy, myopic, the oracle reference) and adds
// three classic priority orders as list planners (RM, LST, SCT) plus
// RT-SADS+GA, the anytime planner of anytime.go. Ladder chains any
// registered policies into a hysteretic degradation ladder, turning
// core.Degrading into one rung of a general mechanism; Tournament races
// every registered policy over a workload corpus.
package policy

import (
	"fmt"
	"io"
	"sync"

	"rtsads/internal/admission"
	"rtsads/internal/core"
	"rtsads/internal/represent"
	"rtsads/internal/search"
	"rtsads/internal/simtime"
	"rtsads/internal/task"
)

// Options carries everything a policy factory may need: the search
// configuration every planner shares, plus the GA knobs the anytime policy
// reads. Factories copy what they use; mutating Options after New returns
// does not affect the planner.
type Options struct {
	// Search parameterises the planner (workers, costs, quantum policy,
	// parallelism). Required.
	Search core.SearchConfig
	// GA tunes the anytime optimizer; zero values select defaults. Only
	// the RT-SADS+GA policy reads it.
	GA GAConfig
}

// Factory builds one planner instance from options.
type Factory func(Options) (core.Planner, error)

// PredicateFactory builds a policy's admission-time schedulability
// quick-test, or returns nil when the options cannot support one.
type PredicateFactory func(Options) admission.Predicate

// Spec describes one registered policy.
type Spec struct {
	// Name is the registry key, matched exactly by flags and lookups.
	Name string
	// Description is the one-line summary `-policy list` prints.
	Description string
	// New builds the planner. Required.
	New Factory
	// Predicate, when non-nil, builds the policy's admission quick-test
	// (wired behind the -admit-quick flag). Optional.
	Predicate PredicateFactory
}

// Registry maps policy names to specs, preserving registration order for
// display. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	order []string
	specs map[string]Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]Spec)}
}

// Register adds a spec. Names are unique: re-registering is an error, so a
// typo'd extension cannot silently shadow a built-in.
func (r *Registry) Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("policy: spec needs a name")
	}
	if s.New == nil {
		return fmt.Errorf("policy: spec %q needs a factory", s.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[s.Name]; dup {
		return fmt.Errorf("policy: %q is already registered", s.Name)
	}
	r.specs[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (Spec, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.specs[name]
	return s, ok
}

// Names returns every registered name in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// New builds the named policy's planner. Unknown names fail with the full
// registry listed, so flag errors are self-explaining.
func (r *Registry) New(name string, opts Options) (core.Planner, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, r.Names())
	}
	return s.New(opts)
}

// NewPredicate builds the named policy's admission quick-test, or nil when
// the policy does not define one.
func (r *Registry) NewPredicate(name string, opts Options) (admission.Predicate, error) {
	s, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (registered: %v)", name, r.Names())
	}
	if s.Predicate == nil {
		return nil, nil
	}
	return s.Predicate(opts), nil
}

// Describe writes one line per registered policy — the body of
// `-policy list`.
func (r *Registry) Describe(w io.Writer) error {
	for _, name := range r.Names() {
		s, _ := r.Lookup(name)
		if _, err := fmt.Fprintf(w, "%-12s %s\n", s.Name, s.Description); err != nil {
			return err
		}
	}
	return nil
}

// Ladder chains the named policies into a degradation ladder: names[0] is
// the primary, and each subsequent name is the hysteretic fallback of the
// one before it (rung i falls back to rung i+1 under cfg, recursively).
// core.Degrading is the two-policy special case. The returned controller is
// the TOP rung — its counters report transitions out of the primary — and
// is nil when only one name is given.
func (r *Registry) Ladder(opts Options, cfg core.DegradeConfig, names ...string) (core.Planner, *core.Degrading, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("policy: ladder needs at least one policy")
	}
	planner, err := r.New(names[len(names)-1], opts)
	if err != nil {
		return nil, nil, err
	}
	var top *core.Degrading
	for i := len(names) - 2; i >= 0; i-- {
		primary, err := r.New(names[i], opts)
		if err != nil {
			return nil, nil, err
		}
		top, err = core.NewDegrading(primary, planner, cfg)
		if err != nil {
			return nil, nil, err
		}
		planner = top
	}
	return planner, top, nil
}

// defaultRegistry builds the built-in policy set exactly once.
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared registry of built-in policies. Callers may
// Register additional policies on it; built-ins cannot be replaced.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		for _, s := range builtins() {
			if err := defaultReg.Register(s); err != nil {
				// Only reachable through a duplicate in the literal below:
				// a programming error, not an input.
				panic(err)
			}
		}
	})
	return defaultReg
}

// utilizationFor adapts the demand-bound quick-test to a policy's worker
// count — the PredicateFactory every built-in shares, since the test is a
// property of the platform, not of any one priority order.
func utilizationFor(o Options) admission.Predicate {
	return NewUtilization(o.Search.Workers)
}

// listFactory builds a list planner under the given prioritizer.
func listFactory(name string, p Prioritizer) Factory {
	return func(o Options) (core.Planner, error) {
		return core.NewList(o.Search, name, p.Order)
	}
}

// builtins returns the default policy set in display order.
func builtins() []Spec {
	return []Spec{
		{
			Name:        "RT-SADS",
			Description: "the paper's assignment-oriented quantum-bounded DFS (§4)",
			New:         func(o Options) (core.Planner, error) { return core.NewRTSADS(o.Search) },
			Predicate:   utilizationFor,
		},
		{
			Name:        "D-COLS",
			Description: "sequence-oriented search baseline, same quantum formula (§5.2)",
			New:         func(o Options) (core.Planner, error) { return core.NewDCOLS(o.Search) },
			Predicate:   utilizationFor,
		},
		{
			Name:        "D-COLS-LL",
			Description: "D-COLS with least-loaded processor order instead of round-robin",
			New: func(o Options) (core.Planner, error) {
				rep := represent.NewSequence(o.Search.Workers)
				rep.LeastLoaded = true
				if o.Search.SumCost {
					rep.Cost = search.SumCost{}
				}
				return core.NewSearchPlanner(o.Search, rep, "D-COLS-LL")
			},
			Predicate: utilizationFor,
		},
		{
			Name:        "EDF-greedy",
			Description: "list scheduling in earliest-deadline order, no backtracking",
			New:         func(o Options) (core.Planner, error) { return core.NewEDFGreedy(o.Search) },
			Predicate:   utilizationFor,
		},
		{
			Name:        "myopic",
			Description: "windowed heuristic H = d + w·est over the 7 most urgent tasks",
			New:         func(o Options) (core.Planner, error) { return core.NewMyopic(o.Search, 7, 1) },
			Predicate:   utilizationFor,
		},
		{
			Name:        "RM",
			Description: "list scheduling by static deadline-monotonic priority (aperiodic RM)",
			New:         listFactory("RM", RM()),
			Predicate:   utilizationFor,
		},
		{
			Name:        "LST",
			Description: "list scheduling by least slack time (d − now − p)",
			New:         listFactory("LST", LST()),
			Predicate:   utilizationFor,
		},
		{
			Name:        "SCT",
			Description: "list scheduling by shortest completion time (SJF order)",
			New:         listFactory("SCT", SCT()),
			Predicate:   utilizationFor,
		},
		{
			Name:        "RT-SADS+GA",
			Description: "anytime: GA incumbent seeds the DFS with its CE bound, polishes leftovers",
			New:         func(o Options) (core.Planner, error) { return NewAnytime(o.Search, o.GA) },
			Predicate:   utilizationFor,
		},
		{
			Name:        "oracle",
			Description: "EDF-greedy at near-zero scheduling overhead (optimistic reference)",
			New: func(o Options) (core.Planner, error) {
				cfg := o.Search
				cfg.VertexCost = 1 // 1ns per decision
				cfg.PhaseCost = 0
				return core.NewEDFGreedy(cfg)
			},
			Predicate: utilizationFor,
		},
	}
}

// Prioritizer is the task-ordering extension point: a named, deterministic
// batch order a list planner commits to. Order must sort in place and may
// use now for dynamic priorities.
type Prioritizer struct {
	Name  string
	Order core.OrderFunc
}

// EDF returns the earliest-deadline-first order (the paper's heuristic).
func EDF() Prioritizer {
	return Prioritizer{Name: "EDF", Order: func(_ simtime.Instant, b []*task.Task) { task.SortEDF(b) }}
}

// LST returns the least-slack-time order. Slack at the phase start is
// d − now − p; with now common to the whole batch that orders identically
// to the static laxity d − p, so the shared sort suffices.
func LST() Prioritizer {
	return Prioritizer{Name: "LST", Order: func(_ simtime.Instant, b []*task.Task) { task.SortLLF(b) }}
}

// SCT returns the shortest-completion-time order (SJF by processing time).
func SCT() Prioritizer {
	return Prioritizer{Name: "SCT", Order: func(_ simtime.Instant, b []*task.Task) { task.SortSCT(b) }}
}

// RM returns the rate-monotonic analogue for this aperiodic workload:
// static priority by relative deadline (deadline-monotonic), the shorter
// window playing the shorter period's role.
func RM() Prioritizer {
	return Prioritizer{Name: "RM", Order: func(_ simtime.Instant, b []*task.Task) { task.SortDM(b) }}
}

// NewListPlanner builds a list planner under an arbitrary prioritizer —
// the one-liner the TUTORIAL's custom-policy walkthrough registers.
func NewListPlanner(cfg core.SearchConfig, p Prioritizer) (core.Planner, error) {
	return core.NewList(cfg, p.Name, p.Order)
}
