// tracing: records the full timeline of an RT-SADS run — phases,
// deliveries, executions, purges — and renders the event log, a per-worker
// Gantt chart, and the response-time distribution.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"rtsads/internal/core"
	"rtsads/internal/machine"
	"rtsads/internal/task"
	"rtsads/internal/trace"
	"rtsads/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := workload.DefaultParams(4)
	params.NumTransactions = 40
	w, err := workload.Generate(params)
	if err != nil {
		return err
	}

	planner, err := core.NewRTSADS(core.SearchConfig{
		Workers: params.Workers,
		Comm: func(t *task.Task, proc int) time.Duration {
			return w.Cost.Cost(t.Affinity, proc)
		},
		VertexCost: time.Microsecond,
		Policy:     core.NewAdaptive(),
	})
	if err != nil {
		return err
	}

	timeline := trace.NewLog(0)
	m, err := machine.New(machine.Config{
		Workers: params.Workers,
		Planner: planner,
		Trace:   timeline,
	})
	if err != nil {
		return err
	}
	res, err := m.Run(w.Tasks)
	if err != nil {
		return err
	}

	fmt.Printf("run: %s\n\n", res)

	fmt.Println("timeline (first 25 events):")
	if err := timeline.Render(os.Stdout, 25); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("per-worker Gantt chart:")
	if err := timeline.Gantt(os.Stdout, params.Workers, 72); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("response-time distribution (executed tasks):")
	return res.Response.Render(os.Stdout)
}
