// Package rng implements a small deterministic pseudo-random number
// generator used throughout the simulator.
//
// The experiments in this repository must be reproducible bit-for-bit from a
// seed, across Go releases and operating systems. math/rand's global source
// and its seeding behaviour have changed between Go versions, so the
// simulator carries its own generator: SplitMix64 for seeding and stream
// derivation, and PCG-XSH-RR-like mixing (xorshift-multiply, as in
// wyrand/splitmix) for the main stream. The statistical quality is far more
// than the workload generators need.
package rng

import "math"

// Source is a deterministic 64-bit PRNG. It is not safe for concurrent use;
// derive an independent stream per goroutine with Split.
type Source struct {
	state uint64
	gamma uint64 // odd stream constant, makes Split-derived streams independent
}

const (
	goldenGamma   = 0x9e3779b97f4a7c15
	defaultSeed   = 0x7261747361647321 // "ratsads!" — arbitrary non-zero default
	mixMultiplier = 0xbf58476d1ce4e5b9
	mixFinal      = 0x94d049bb133111eb
)

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = defaultSeed
	}
	return &Source{state: seed, gamma: goldenGamma}
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixMultiplier
	z = (z ^ (z >> 27)) * mixFinal
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Split derives a new Source whose stream is statistically independent of
// the parent's. The parent advances by one draw.
func (s *Source) Split() *Source {
	seed := s.Uint64()
	gamma := (mix64(seed^goldenGamma) | 1) // must be odd
	return &Source{state: seed, gamma: gamma}
}

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, debiased.
	un := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mulHiLo(v, un)
		if lo >= un || lo >= -un%un { // unbiased when lo is clear of the wrap zone
			return int(hi)
		}
	}
}

// mulHiLo returns the 128-bit product of a and b as (hi, lo).
func mulHiLo(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask32+aLo*bHi)>>32
	return hi, lo
}

// IntRange returns a uniform integer in the inclusive range [lo, hi]. It
// panics if lo > hi.
func (s *Source) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange with lo > hi")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float with rate 1
// (mean 1), via inversion.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Choose returns k distinct integers sampled uniformly from [0, n),
// in random order. It panics if k > n or k < 0.
func (s *Source) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose with k out of range")
	}
	p := s.Perm(n)
	return p[:k]
}
