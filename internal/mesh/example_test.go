package mesh_test

import (
	"fmt"

	"rtsads/internal/mesh"
)

// Example shows why the paper's constant-C model holds on a wormhole mesh:
// a 350KB transfer costs virtually the same across one hop or five.
func Example() {
	cfg := mesh.DefaultConfig(11) // the 10 workers plus the host
	const size = 350_000
	l1 := cfg.Latency(1, size)
	l5 := cfg.Latency(5, size)
	fmt.Println("1 hop: ", l1)
	fmt.Println("5 hops:", l5)
	fmt.Printf("distance penalty: %.4f%%\n", 100*float64(l5-l1)/float64(l1))
	// Output:
	// 1 hop:  2.1001ms
	// 5 hops: 2.1005ms
	// distance penalty: 0.0190%
}
