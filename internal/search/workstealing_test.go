package search_test

// Differential tests pinning the work-stealing parallel driver against the
// sequential engine:
//
//   - 50 seeded Fig-5 batches (EDF order + affinity communication makes the
//     trees heavily skewed — the regime that starved the old static
//     partitioning) × worker counts 1/2/4/8 must return the sequential
//     engine's schedule bit for bit.
//   - with duplicate detection off (DupCap < 0) the equivalence is exact in
//     EVERY regime, including quantum expiry: same schedule, same depth,
//     same termination flags.
//   - with duplicate detection on (the default), expiring searches must be
//     at least as deep as sequential and still bit-identical across worker
//     counts and repeats.
//   - the spawn-policy knobs (StealDepth, FrontierCap) must not affect the
//     result, only the decomposition.
//
// The CI race job runs this file with -count=2 to shake out ordering flakes.

import (
	"reflect"
	"testing"
	"time"

	"rtsads/internal/represent"
	"rtsads/internal/search"
)

var wsDegrees = []int{1, 2, 4, 8}

func runSeq(t *testing.T, p *search.Problem) *search.Result {
	t.Helper()
	res, err := search.Run(p, represent.NewAssignment())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runWS(t *testing.T, p *search.Problem, opt search.ParallelOptions) *search.Result {
	t.Helper()
	res, err := search.RunParallel(p, represent.NewAssignment(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkStealingBitIdenticalAcrossWorkers is the ISSUE-6 acceptance
// test: 50 seeded skewed trees, worker counts 1/2/4/8, schedule equal to
// sequential bit for bit — with duplicate detection both off and on (a
// completing search's schedule is exact either way).
func TestWorkStealingBitIdenticalAcrossWorkers(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		workers := 4
		if seed%2 == 0 {
			workers = 10
		}
		mk := func() *search.Problem {
			return fig5Problem(t, workers, 40, seed, time.Nanosecond)
		}
		seq := runSeq(t, mk())
		want := flatten(seq.Schedule())
		for _, degree := range wsDegrees {
			for _, dupCap := range []int{-1, 0} {
				par := runWS(t, mk(), search.ParallelOptions{Degree: degree, DupCap: dupCap})
				if got := flatten(par.Schedule()); !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d degree=%d dupCap=%d: schedule differs from sequential:\n%v\nvs\n%v",
						seed, degree, dupCap, got, want)
				}
				if par.Best.Depth != seq.Best.Depth || par.Stats.Leaf != seq.Stats.Leaf ||
					par.Stats.Expired != seq.Stats.Expired {
					t.Fatalf("seed=%d degree=%d dupCap=%d: depth/flags diverge: %+v vs %+v",
						seed, degree, dupCap, par.Stats, seq.Stats)
				}
			}
		}
	}
}

// TestWorkStealingExpiringExactEquality: with duplicate detection off, the
// settle pass's budget truncation must reproduce the sequential engine's
// quantum expiry exactly — same schedule, same depth, same flags — at any
// worker count. This is the hard case: the quantum dies mid-tree and the
// speculative frames must be cut at precisely the sequential boundary.
func TestWorkStealingExpiringExactEquality(t *testing.T) {
	expired := 0
	for seed := uint64(1); seed <= 10; seed++ {
		mk := func() *search.Problem {
			// 1µs/vertex over a 120-task batch blows the 500µs quantum.
			return fig5Problem(t, 10, 120, seed, time.Microsecond)
		}
		seq := runSeq(t, mk())
		if seq.Stats.Expired {
			expired++
		}
		want := flatten(seq.Schedule())
		for _, degree := range wsDegrees {
			par := runWS(t, mk(), search.ParallelOptions{Degree: degree, DupCap: -1})
			if got := flatten(par.Schedule()); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d degree=%d: expiring schedule differs from sequential:\n%v\nvs\n%v",
					seed, degree, got, want)
			}
			if par.Best.Depth != seq.Best.Depth ||
				par.Stats.Expired != seq.Stats.Expired || par.Stats.Leaf != seq.Stats.Leaf {
				t.Fatalf("seed=%d degree=%d: depth/flags diverge: %+v vs %+v",
					seed, degree, par.Stats, seq.Stats)
			}
		}
	}
	if expired == 0 {
		t.Fatal("fixture never expired; the test is not exercising the truncation path")
	}
}

// TestWorkStealingDedupExpiringDominates: with duplicate detection on, an
// expiring search must reach at least the sequential depth (budget is
// never spent re-expanding known states) and must still be a deterministic
// function of the input — identical across worker counts and repeats.
func TestWorkStealingDedupExpiringDominates(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		mk := func() *search.Problem {
			return fig5Problem(t, 10, 120, seed, time.Microsecond)
		}
		seq := runSeq(t, mk())
		var want []schedKey
		for i, degree := range wsDegrees {
			par := runWS(t, mk(), search.ParallelOptions{Degree: degree})
			if par.Best.Depth < seq.Best.Depth {
				t.Fatalf("seed=%d degree=%d: dedup search shallower than sequential: %d < %d",
					seed, degree, par.Best.Depth, seq.Best.Depth)
			}
			got := flatten(par.Schedule())
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d degree=%d: dedup schedule changed with worker count", seed, degree)
			}
		}
	}
}

// TestWorkStealingKnobsPreserveResult: the spawn-policy knobs change the
// frame decomposition, never the answer.
func TestWorkStealingKnobsPreserveResult(t *testing.T) {
	mk := func() *search.Problem {
		return fig5Problem(t, 10, 60, 11, time.Nanosecond)
	}
	seq := runSeq(t, mk())
	want := flatten(seq.Schedule())
	for _, stealDepth := range []int{1, 3, 8, 32} {
		for _, frontierCap := range []int{1, 4, 64, 4096} {
			opt := search.ParallelOptions{Degree: 4, StealDepth: stealDepth, FrontierCap: frontierCap}
			par := runWS(t, mk(), opt)
			if got := flatten(par.Schedule()); !reflect.DeepEqual(got, want) {
				t.Fatalf("stealDepth=%d frontierCap=%d: schedule differs from sequential",
					stealDepth, frontierCap)
			}
		}
	}
}

// TestWorkStealingRepeatDeterminism: same input, same options, repeated
// runs: identical schedule. Under -race this doubles as the ordering
// stress for the deques, the settle heap, and the incumbent bound.
func TestWorkStealingRepeatDeterminism(t *testing.T) {
	for _, degree := range []int{2, 8} {
		var want []schedKey
		for rep := 0; rep < 10; rep++ {
			p := fig5Problem(t, 10, 120, 7, time.Microsecond)
			res := runWS(t, p, search.ParallelOptions{Degree: degree, StealDepth: 8})
			got := flatten(res.Schedule())
			if rep == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("degree=%d repeat %d: schedule changed across runs", degree, rep)
			}
		}
	}
}
