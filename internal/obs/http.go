package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// expvarReg is the registry the process-wide expvar view reads from;
// publishing into expvar is once-per-process (expvar.Publish panics on
// duplicates), so Serve swaps the pointer instead of re-publishing.
var (
	expvarReg  atomic.Pointer[Registry]
	expvarOnce sync.Once
)

func publishExpvar() {
	expvar.Publish("rtsads", expvar.Func(func() any {
		return expvarReg.Load().Snapshot()
	}))
}

// Server is the HTTP debug endpoint: /metrics (Prometheus text
// exposition), /healthz (per-worker liveness as JSON), /journal (the event
// journal as JSON Lines), /debug/vars (expvar) and /debug/pprof. It binds
// eagerly so ":0" works, and serves in the background until Close.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the debug endpoint on addr (host:port; port 0 picks a free
// port) over the observer's registry, journal and health view.
func Serve(addr string, o *Observer) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	expvarReg.Store(o.Registry())
	expvarOnce.Do(publishExpvar)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		workers := o.Health()
		alive := 0
		for _, h := range workers {
			if h.Alive {
				alive++
			}
		}
		status := "ok"
		if alive < len(workers) {
			status = "degraded"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Status  string         `json:"status"`
			Alive   int            `json:"alive"`
			Total   int            `json:"total"`
			Workers []WorkerHealth `json:"workers"`
		}{status, alive, len(workers), workers})
	})
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		o.Journal().WriteJSONL(w)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(o.SLOSummary())
	})
	mux.HandleFunc("/trace/task", func(w http.ResponseWriter, r *http.Request) {
		ServeTaskTrace(w, r, func() ([]Entry, int64) { return o.Journal().Export() })
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(lis)
	return s, nil
}

// ServeTaskTrace answers /trace/task?id=N over any journal source — one
// cluster's journal or a federation merge. The payload is the task's
// assembled span chain, terminal state and slack accounting, plus the
// journal's eviction count so a truncated ring is reported rather than
// mistaken for a missing task. Shared by the single-cluster debug server
// and the federation handler.
func ServeTaskTrace(w http.ResponseWriter, r *http.Request, export func() ([]Entry, int64)) {
	w.Header().Set("Content-Type", "application/json")
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "missing or non-numeric id parameter"})
		return
	}
	entries, evicted := export()
	tt := TaskTraceFor(entries, id)
	if tt == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(struct {
			Error   string `json:"error"`
			Evicted int64  `json:"evicted"`
		}{fmt.Sprintf("no lifecycle spans for task %d", id), evicted})
		return
	}
	json.NewEncoder(w).Encode(struct {
		*TaskTrace
		Evicted int64 `json:"evicted"`
	}{tt, evicted})
}

// Addr returns the bound address (resolving ":0" to the actual port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the endpoint's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the server immediately.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
