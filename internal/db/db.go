// Package db implements the distributed real-time database substrate of the
// paper's evaluation (§5): a relational table of r tuples hash-partitioned
// into d sub-databases, each held in the private memory of one or more
// working processors, queried by read-only transactions with firm deadlines.
//
// Layout follows §5.1 exactly: each sub-database holds TuplesPerSub records
// of NumAttrs attributes; attribute domains are disjoint between
// sub-databases (so a transaction's attribute values identify a unique
// sub-database); sub-databases are indexed on a designated key attribute;
// and the host maintains a global index file used to estimate worst-case
// transaction execution costs before scheduling.
package db

import (
	"fmt"
	"time"

	"rtsads/internal/rng"
)

// NumAttrs is the number of attributes per tuple (§5.1: "Each sub-database
// holds 1000 records and 10 attributes").
const NumAttrs = 10

// Value is an attribute value. Domains are disjoint integer ranges, so a
// value alone determines both its sub-database and its attribute.
type Value int32

// Tuple is one database record.
type Tuple [NumAttrs]Value

// Config describes the shape of the generated database.
type Config struct {
	// SubDBs is d, the number of sub-databases the relation is partitioned
	// into (§5.1: 10).
	SubDBs int
	// TuplesPerSub is r/d, the number of records per sub-database (§5.1:
	// 1000).
	TuplesPerSub int
	// DomainSize is the number of distinct values in each attribute's
	// domain within one sub-database. The expected key frequency — and thus
	// the expected cost of an indexed transaction — is
	// TuplesPerSub/DomainSize.
	DomainSize int
	// KeyAttr is the attribute the sub-databases are indexed on (§5.1:
	// "attribute #1", index 0 here).
	KeyAttr int
	// ExtraIndexes lists additional attributes to index, beyond KeyAttr —
	// an extension over the paper's single-index schema that diversifies
	// transaction cost classes. Empty reproduces the paper.
	ExtraIndexes []int
}

// DefaultConfig returns the paper's §5.1 parameters. The domain size is a
// calibration constant the paper does not publish; 10 distinct values per
// attribute gives keyed transactions an expected cost of ~100 checking
// iterations (a tenth of a full partition scan), which makes both the
// indexed and the scanning transaction classes schedulable under the
// SF×10×cost deadline rule.
func DefaultConfig() Config {
	return Config{SubDBs: 10, TuplesPerSub: 1000, DomainSize: 10, KeyAttr: 0}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SubDBs <= 0 {
		return fmt.Errorf("db: SubDBs %d must be positive", c.SubDBs)
	}
	if c.TuplesPerSub <= 0 {
		return fmt.Errorf("db: TuplesPerSub %d must be positive", c.TuplesPerSub)
	}
	if c.DomainSize <= 0 {
		return fmt.Errorf("db: DomainSize %d must be positive", c.DomainSize)
	}
	if c.KeyAttr < 0 || c.KeyAttr >= NumAttrs {
		return fmt.Errorf("db: KeyAttr %d out of range [0,%d)", c.KeyAttr, NumAttrs)
	}
	seen := map[int]bool{c.KeyAttr: true}
	for _, a := range c.ExtraIndexes {
		if a < 0 || a >= NumAttrs {
			return fmt.Errorf("db: indexed attribute %d out of range [0,%d)", a, NumAttrs)
		}
		if seen[a] {
			return fmt.Errorf("db: attribute %d indexed twice", a)
		}
		seen[a] = true
	}
	return nil
}

// IndexedAttrs returns every indexed attribute: the key attribute first,
// then the extra indexes.
func (c Config) IndexedAttrs() []int {
	return append([]int{c.KeyAttr}, c.ExtraIndexes...)
}

// domainBase returns the first value of the domain of attribute attr within
// sub-database sub. Domains are consecutive disjoint ranges:
// [base, base+DomainSize).
func (c Config) domainBase(sub, attr int) Value {
	return Value((sub*NumAttrs + attr) * c.DomainSize)
}

// SubOfValue returns the sub-database that owns value v, or -1 when v is
// outside every domain.
func (c Config) SubOfValue(v Value) int {
	if v < 0 {
		return -1
	}
	sub := int(v) / (NumAttrs * c.DomainSize)
	if sub >= c.SubDBs {
		return -1
	}
	return sub
}

// AttrOfValue returns the attribute whose domain contains v, or -1 when v is
// outside every domain.
func (c Config) AttrOfValue(v Value) int {
	if v < 0 || c.SubOfValue(v) < 0 {
		return -1
	}
	return (int(v) / c.DomainSize) % NumAttrs
}

// SubDB is one partition of the relation, resident in the private memory of
// every working processor that holds a replica.
type SubDB struct {
	ID     int
	Tuples []Tuple
	// indexes maps each indexed attribute to a value→positions index — the
	// per-partition indexes the workers use instead of full scans.
	indexes map[int]map[Value][]int32
}

// Database is the full partitioned relation plus the host-side global index
// file used for cost estimation.
type Database struct {
	Config Config
	Subs   []*SubDB
	// freq is the global index file: for each indexed attribute, the number
	// of tuples holding each value, across all sub-databases (§5.1: "the
	// host processor maintains the global index file of the database").
	freq map[int]map[Value]int
}

// Generate builds a database according to cfg, drawing every attribute value
// uniformly from its domain (§5.1: "A uniformly distributed item is
// generated for each attribute-value based on its domain").
func Generate(cfg Config, r *rng.Source) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	indexed := cfg.IndexedAttrs()
	d := &Database{
		Config: cfg,
		Subs:   make([]*SubDB, cfg.SubDBs),
		freq:   make(map[int]map[Value]int, len(indexed)),
	}
	for _, a := range indexed {
		d.freq[a] = make(map[Value]int, cfg.SubDBs*cfg.DomainSize)
	}
	for s := 0; s < cfg.SubDBs; s++ {
		sub := &SubDB{
			ID:      s,
			Tuples:  make([]Tuple, cfg.TuplesPerSub),
			indexes: make(map[int]map[Value][]int32, len(indexed)),
		}
		for _, a := range indexed {
			sub.indexes[a] = make(map[Value][]int32, cfg.DomainSize)
		}
		for i := range sub.Tuples {
			for a := 0; a < NumAttrs; a++ {
				sub.Tuples[i][a] = cfg.domainBase(s, a) + Value(r.Intn(cfg.DomainSize))
			}
			for _, a := range indexed {
				v := sub.Tuples[i][a]
				sub.indexes[a][v] = append(sub.indexes[a][v], int32(i))
				d.freq[a][v]++
			}
		}
		d.Subs[s] = sub
	}
	return d, nil
}

// TotalTuples returns r, the global relation size.
func (d *Database) TotalTuples() int {
	return d.Config.SubDBs * d.Config.TuplesPerSub
}

// KeyFrequency returns the global index file's tuple count for the given
// key value.
func (d *Database) KeyFrequency(v Value) int { return d.freq[d.Config.KeyAttr][v] }

// Frequency returns the global index file's tuple count for the given
// value of an indexed attribute (0 when the attribute is not indexed).
func (d *Database) Frequency(attr int, v Value) int { return d.freq[attr][v] }

// Predicate is one condition of a transaction: an attribute=value point
// match (the paper's form), or — with Range set — an inclusive
// attribute∈[Lo,Hi] range (an extension).
type Predicate struct {
	Attr  int
	Value Value
	Range bool
	Lo    Value
	Hi    Value
}

// match reports whether v satisfies the predicate.
func (p Predicate) match(v Value) bool {
	if p.Range {
		return v >= p.Lo && v <= p.Hi
	}
	return v == p.Value
}

// Transaction is a read-only query: locate the tuples that match every
// predicate (§5.1: "A transaction is characterized by the attributes values
// that transaction aims to locate").
type Transaction struct {
	ID    int32
	Sub   int // the sub-database the predicate values belong to
	Preds []Predicate
}

// HasKey returns the key-attribute point value carried by the transaction,
// if any. Transactions providing the key can be located through the index.
func (q *Transaction) HasKey(keyAttr int) (Value, bool) {
	for _, p := range q.Preds {
		if p.Attr == keyAttr && !p.Range {
			return p.Value, true
		}
	}
	return 0, false
}

// TxnOptions extends transaction generation beyond the paper's
// point-predicate form.
type TxnOptions struct {
	// RangeProb is the probability that a predicate is an inclusive range
	// over its attribute's domain instead of a point match. Zero
	// reproduces the paper.
	RangeProb float64
}

// GenTransaction draws one transaction per §5.1: a uniformly chosen
// sub-database, a uniformly distributed number of given attribute-values
// (1..NumAttrs distinct attributes), each value picked equiprobably from its
// domain.
func (d *Database) GenTransaction(id int32, r *rng.Source) Transaction {
	return d.GenTransactionOpts(id, r, TxnOptions{})
}

// GenTransactionOpts draws one transaction with the given extensions.
func (d *Database) GenTransactionOpts(id int32, r *rng.Source, opts TxnOptions) Transaction {
	cfg := d.Config
	sub := r.Intn(cfg.SubDBs)
	n := r.IntRange(1, NumAttrs)
	attrs := r.Choose(NumAttrs, n)
	preds := make([]Predicate, n)
	for i, a := range attrs {
		base := cfg.domainBase(sub, a)
		if r.Bool(opts.RangeProb) {
			lo := base + Value(r.Intn(cfg.DomainSize))
			hi := base + Value(r.Intn(cfg.DomainSize))
			if lo > hi {
				lo, hi = hi, lo
			}
			preds[i] = Predicate{Attr: a, Range: true, Lo: lo, Hi: hi}
			continue
		}
		preds[i] = Predicate{
			Attr:  a,
			Value: base + Value(r.Intn(cfg.DomainSize)),
		}
	}
	return Transaction{ID: id, Sub: sub, Preds: preds}
}

// indexedCount returns the number of tuples an index probe for pred would
// have to check, and whether pred can use an index at all. Because
// attribute domains are disjoint between sub-databases, the global index
// frequency equals the count inside the owning partition.
func (d *Database) indexedCount(pred Predicate) (int, bool) {
	freq, ok := d.freq[pred.Attr]
	if !ok {
		return 0, false
	}
	if !pred.Range {
		return freq[pred.Value], true
	}
	n := 0
	for v := pred.Lo; v <= pred.Hi; v++ {
		n += freq[v]
	}
	return n, true
}

// accessPath selects the cheapest way to execute q: the indexed predicate
// with the fewest candidate tuples, or a full partition scan when no
// predicate is indexed. The executor applies the identical rule, so the
// host's estimate equals the worker's actual iteration count. It returns
// the index of the chosen predicate (-1 for a scan) and the worst-case
// iteration count.
func (d *Database) accessPath(q *Transaction) (pred int, iterations int) {
	pred = -1
	iterations = d.Config.TuplesPerSub
	for i, p := range q.Preds {
		n, ok := d.indexedCount(p)
		if !ok {
			continue
		}
		if n < 1 {
			n = 1 // the probe itself
		}
		if n < iterations || (n == iterations && pred == -1) {
			pred, iterations = i, n
		}
	}
	return pred, iterations
}

// EstimateIterations returns the worst-case number of checking iterations a
// worker needs to execute q — the paper's host-side estimation function:
// the global-index frequency when q provides an indexed value, r/d (a full
// sub-database scan) otherwise. A keyed transaction whose value happens to
// be absent still costs one index probe, so the estimate is at least 1.
func (d *Database) EstimateIterations(q *Transaction) int {
	_, n := d.accessPath(q)
	return n
}

// EstimateCost returns the worst-case execution cost of q when each checking
// iteration costs perIter (the paper's constant k):
// Execution_Cost(q) = k × iterations.
func (d *Database) EstimateCost(q *Transaction, perIter time.Duration) time.Duration {
	return time.Duration(d.EstimateIterations(q)) * perIter
}

// ExecResult reports the outcome of executing a transaction on a replica.
type ExecResult struct {
	// Matches is the number of tuples satisfying every predicate.
	Matches int
	// Iterations is the number of checking iterations performed; the
	// worker's execution time is Iterations × k. By construction it equals
	// the host's estimate, because the estimate is the worst case of the
	// same access path.
	Iterations int
}

// Execute runs q against this sub-database replica (which must belong to
// database d): an index probe plus candidate checking when a predicate is
// indexed, a full partition scan otherwise. It returns an error when q
// belongs to a different sub-database — executing it there would silently
// return no matches, which always indicates a placement bug in the caller.
func (d *Database) Execute(s *SubDB, q *Transaction) (ExecResult, error) {
	if q.Sub != s.ID {
		return ExecResult{}, fmt.Errorf("db: transaction %d targets sub-database %d, executed on %d",
			q.ID, q.Sub, s.ID)
	}
	predIdx, _ := d.accessPath(q)
	if predIdx < 0 {
		res := ExecResult{Iterations: len(s.Tuples)}
		for i := range s.Tuples {
			if s.matches(i, q.Preds) {
				res.Matches++
			}
		}
		return res, nil
	}
	p := q.Preds[predIdx]
	idx := s.indexes[p.Attr]
	var candidates []int32
	if !p.Range {
		candidates = idx[p.Value]
	} else {
		for v := p.Lo; v <= p.Hi; v++ {
			candidates = append(candidates, idx[v]...)
		}
	}
	res := ExecResult{Iterations: len(candidates)}
	if res.Iterations == 0 {
		res.Iterations = 1 // the index probe itself
	}
	for _, i := range candidates {
		if s.matches(int(i), q.Preds) {
			res.Matches++
		}
	}
	return res, nil
}

func (s *SubDB) matches(i int, preds []Predicate) bool {
	for _, p := range preds {
		if !p.match(s.Tuples[i][p.Attr]) {
			return false
		}
	}
	return true
}
