package represent

import (
	"time"

	"rtsads/internal/search"
)

// Sequence is the sequence-oriented representation (§3, Figure 1): at each
// tree level a processor is selected in round-robin order, and the branches
// decide which of the remaining tasks to run next on it. It is the direct
// extension of uni-processor scheduling the paper attributes to prior work
// [3][6] and to D-COLS [2].
//
// Structurally, backtracking at level l can only re-sequence tasks on the
// processors of levels <= l, and a level whose processor has no feasible
// remaining task is a dead branch: the representation cannot route around a
// stuck processor. When the quantum bound truncates the search at a shallow
// depth, only the first few round-robin processors receive tasks — the
// scalability pathology the paper's experiments demonstrate.
type Sequence struct {
	// Breadth caps the number of feasible successors kept per level (0
	// means no cap). Dynamic sequence-oriented schedulers prune breadth to
	// stay responsive; candidates are examined in deadline order, so the
	// cap keeps the most urgent ones.
	Breadth int
	// AllowIdle, when set, adds a lowest-priority successor that leaves the
	// level's processor without a task. The strict representation (the
	// default) does not have this escape hatch; it exists for ablations
	// that quantify how much of D-COLS's gap is due to dead-ends.
	AllowIdle bool
	// LeastLoaded selects each level's processor as the least-loaded one
	// instead of round-robin — the "heuristic function ... applied to
	// affect this order" the paper mentions for Figure 1's processor
	// selection. The structural limitation remains: the level still
	// commits to a single processor before choosing a task.
	LeastLoaded bool
	// Cost overrides the partial-schedule cost model; nil uses the paper's
	// §4.4 load-balancing cost CE = max_k ce_k (search.MaxCost).
	Cost search.CostModel
}

// cost returns the configured cost model (default: §4.4's max).
func (s *Sequence) cost() search.CostModel {
	if s.Cost != nil {
		return s.Cost
	}
	return search.MaxCost{}
}

// NewSequence returns the strict sequence-oriented representation with a
// breadth cap matching the assignment-oriented branching factor.
func NewSequence(workers int) *Sequence {
	return &Sequence{Breadth: workers}
}

// Name implements search.Representation.
func (s *Sequence) Name() string { return "sequence-oriented" }

// Root implements search.Representation.
func (s *Sequence) Root(p *search.Problem) *search.Vertex {
	return search.NewRoot(p, s.cost())
}

// IsLeaf implements search.Representation: all batch tasks are scheduled.
func (s *Sequence) IsLeaf(p *search.Problem, v *search.Vertex) bool {
	return v.Depth >= len(p.Tasks)
}

// Expand implements search.Representation. The level's processor is
// Cursor mod Workers; unscheduled tasks (those not in the path's used set)
// are examined in the batch's priority order (EDF) and each feasibility
// test is charged as one generated vertex.
func (s *Sequence) Expand(p *search.Problem, v *search.Vertex, st *search.PathState) ([]*search.Vertex, int) {
	proc := v.Cursor % p.Workers
	if s.LeastLoaded {
		proc = leastLoadedProc(st.Loads)
	}
	model := s.cost()
	load := st.Loads[proc]
	generated := 0
	succs := search.GetSuccs()
	for i, t := range p.Tasks {
		if st.Used.Has(i) {
			continue
		}
		generated++
		comm := p.Comm(t, proc)
		end, ok := p.Feasible(t, load, comm)
		if !ok {
			continue
		}
		sv := search.NewVertex()
		sv.Parent = v
		sv.Assign = search.Assignment{Task: t, TaskIndex: i, Proc: proc, Comm: comm, EndOffset: end}
		sv.IsAssignment = true
		sv.Depth = v.Depth + 1
		sv.Cursor = v.Cursor + 1
		sv.CE = model.Extend(v.CE, load, end)
		succs = append(succs, sv)
		if s.Breadth > 0 && len(succs) >= s.Breadth {
			break
		}
	}
	if s.AllowIdle && s.canIdle(p, v) {
		// Leave the processor idle this round, ranked after every real
		// assignment. The skip vertex adds no assignment, so it carries no
		// delta: the engine's Descend treats it as a no-op.
		sv := search.NewVertex()
		sv.Parent = v
		sv.Depth = v.Depth
		sv.Cursor = v.Cursor + 1
		sv.CE = v.CE
		succs = append(succs, sv)
		generated++
	}
	if len(succs) == 0 {
		search.PutSuccs(succs)
		return nil, generated
	}
	return succs, generated
}

// leastLoadedProc returns the worker with the smallest completion offset,
// breaking ties by index.
func leastLoadedProc(loads []time.Duration) int {
	best := 0
	for k, l := range loads {
		if l < loads[best] {
			best = k
		}
	}
	return best
}

// canIdle bounds idle levels: after skipping every processor once in a row
// the schedule cannot make progress, so further skips are pointless.
func (s *Sequence) canIdle(p *search.Problem, v *search.Vertex) bool {
	skips := 0
	for cur := v; cur != nil && !cur.IsAssignment && cur.Parent != nil; cur = cur.Parent {
		skips++
		if skips >= p.Workers {
			return false
		}
	}
	return true
}
