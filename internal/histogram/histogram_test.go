package histogram

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const us = time.Microsecond

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram not all-zero")
	}
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Errorf("empty render = %q", b.String())
	}
	if h.String() != "empty" {
		t.Errorf("String = %q", h.String())
	}
}

func TestBucketOf(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{us, 1},         // [1µs, 2µs)
		{2 * us, 2},     // [2µs, 4µs)
		{3 * us, 2},     //
		{4 * us, 3},     // [4µs, 8µs)
		{1023 * us, 10}, // [512µs, 1024µs)
		{-time.Second, 0},
		{100 * time.Hour, numBuckets - 1},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.d); got != tt.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestAddAndStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{us, 3 * us, 5 * us, 7 * us} {
		h.Add(d)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 4*us {
		t.Errorf("Mean = %v, want 4µs", h.Mean())
	}
	if h.Min() != us || h.Max() != 7*us {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	// 100 values: 1µs..100µs.
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * us)
	}
	// The quantile upper bound must never be below the true quantile and
	// never above the next power-of-two edge.
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		trueQ := time.Duration(1+int(q*99)) * us
		if got < trueQ {
			t.Errorf("Quantile(%v) = %v below true value %v", q, got, trueQ)
		}
		if got > 2*trueQ && got != h.Max() {
			t.Errorf("Quantile(%v) = %v more than 2x true value %v", q, got, trueQ)
		}
	}
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 not clamped")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Add(us)
	a.Add(10 * us)
	b.Add(100 * us)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Max() != 100*us {
		t.Errorf("merged max = %v", a.Max())
	}
	if a.Min() != us {
		t.Errorf("merged min = %v", a.Min())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Error("merging empty changed the histogram")
	}
	empty.Merge(&a)
	if empty.Count() != 3 || empty.Min() != us {
		t.Error("merging into empty lost data")
	}
}

func TestRenderShape(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Add(10 * us)
	}
	h.Add(time.Millisecond)
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "n=51") || !strings.Contains(out, "#") {
		t.Errorf("render = %q", out)
	}
}

// Property: Quantile is monotone in q and bounded by [some bucket edge >=
// min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]time.Duration, len(raw))
		for i, v := range raw {
			vals[i] = time.Duration(v) * us
			h.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			if cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Merge preserves the total count and sum (mean consistency).
func TestMergePreservesMassProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		var ha, hb Histogram
		var sum time.Duration
		for _, v := range a {
			d := time.Duration(v) * us
			ha.Add(d)
			sum += d
		}
		for _, v := range b {
			d := time.Duration(v) * us
			hb.Add(d)
			sum += d
		}
		ha.Merge(&hb)
		if ha.Count() != uint64(len(a)+len(b)) {
			return false
		}
		if ha.Count() == 0 {
			return true
		}
		return ha.Mean() == sum/time.Duration(len(a)+len(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketUpperUnderflow(t *testing.T) {
	if bucketUpper(0) != us {
		t.Errorf("bucketUpper(0) = %v", bucketUpper(0))
	}
	if bucketUpper(3) != 8*us {
		t.Errorf("bucketUpper(3) = %v", bucketUpper(3))
	}
}

func TestStringNonEmpty(t *testing.T) {
	var h Histogram
	h.Add(3 * us)
	if h.String() == "" || h.String() == "empty" {
		t.Errorf("String = %q", h.String())
	}
}
